//! Baseline: per-snapshot static BFS with no cross-time traversal.
//!
//! The opposite failure mode to the flattened baseline: treat each snapshot
//! as an isolated static graph and never follow causal edges. This
//! *under-approximates* temporal reachability — it finds only the nodes
//! reachable within the root's own snapshot — and corresponds to what a
//! conventional static-graph library computes when handed one snapshot at a
//! time. The paper's whole point is that the causal edges this baseline
//! drops are what make the evolving-graph BFS correct.

use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::{NodeId, TemporalNode, TimeIndex};
use egraph_core::static_graph::StaticGraph;

/// The static graph of a single snapshot.
pub fn snapshot_graph<G: EvolvingGraph>(graph: &G, t: TimeIndex) -> StaticGraph {
    let mut s = StaticGraph::new(graph.num_nodes());
    for v in 0..graph.num_nodes() {
        let v_id = NodeId::from_index(v);
        graph.for_each_static_out(v_id, t, &mut |w| {
            s.add_edge(v, w.index());
        });
    }
    s
}

/// BFS restricted to the root's snapshot: distances to nodes within snapshot
/// `root.time`, ignoring every other snapshot and every causal edge.
pub fn snapshot_bfs<G: EvolvingGraph>(graph: &G, root: TemporalNode) -> Vec<(NodeId, u32)> {
    let s = snapshot_graph(graph, root.time);
    s.bfs_distances(root.node.index())
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != u32::MAX)
        .map(|(v, &d)| (NodeId::from_index(v), d))
        .collect()
}

/// Temporal nodes reachable by the full evolving-graph BFS but invisible to
/// the per-snapshot baseline — the traversals that require causal edges.
pub fn missed_by_snapshot_bfs<G: EvolvingGraph>(
    graph: &G,
    root: TemporalNode,
) -> Vec<TemporalNode> {
    let Ok(full) = egraph_core::bfs::bfs(graph, root) else {
        return Vec::new();
    };
    let within: Vec<NodeId> = snapshot_bfs(graph, root)
        .into_iter()
        .map(|(v, _)| v)
        .collect();
    full.reached()
        .into_iter()
        .map(|(tn, _)| tn)
        .filter(|tn| tn.time != root.time || !within.contains(&tn.node))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::examples::paper_figure1;

    #[test]
    fn snapshot_graph_contains_only_that_snapshots_edges() {
        let g = paper_figure1();
        let s0 = snapshot_graph(&g, TimeIndex(0));
        assert!(s0.has_edge(0, 1));
        assert!(!s0.has_edge(0, 2));
        assert_eq!(s0.num_edges(), 1);
    }

    #[test]
    fn snapshot_bfs_sees_only_the_current_snapshot() {
        let g = paper_figure1();
        let within = snapshot_bfs(&g, TemporalNode::from_raw(0, 0));
        // From node 1 at t1 only node 2 is reachable within t1.
        assert_eq!(within, vec![(NodeId(0), 0), (NodeId(1), 1)]);
    }

    #[test]
    fn causal_edges_account_for_everything_the_baseline_misses() {
        let g = paper_figure1();
        let missed = missed_by_snapshot_bfs(&g, TemporalNode::from_raw(0, 0));
        // The full BFS reaches 6 temporal nodes; the snapshot baseline covers
        // the two t1 occurrences, so four are missed.
        assert_eq!(missed.len(), 4);
        assert!(missed.contains(&TemporalNode::from_raw(2, 2)));
        assert!(missed.iter().all(|tn| tn.time != TimeIndex(0)));
    }

    #[test]
    fn missed_set_is_empty_for_single_snapshot_graphs() {
        let mut g = egraph_core::adjacency::AdjacencyListGraph::directed_with_unit_times(3, 1);
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), TimeIndex(0)).unwrap();
        assert!(missed_by_snapshot_bfs(&g, TemporalNode::from_raw(0, 0)).is_empty());
    }
}
