//! Baseline: BFS on the time-flattened union graph.
//!
//! A tempting shortcut when handed an evolving graph is to forget time
//! entirely: union all snapshots into one static graph over the node
//! universe and run ordinary BFS. This ignores both causality (paths may use
//! an early edge after a late one) and activeness, so it *over-approximates*
//! temporal reachability: everything temporally reachable is flat-reachable,
//! but not vice versa (the introduction's message-passing game is exactly a
//! case where flat reachability says "yes" and temporal reachability says
//! "no"). The baseline exists to quantify that gap and to serve as a
//! performance yardstick in the ablation benchmarks.

use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::{NodeId, TimeIndex};
use egraph_core::static_graph::StaticGraph;

/// The union static graph: one node per node-universe entry, one directed
/// edge `(u, v)` if the static edge exists at *any* snapshot.
pub fn flatten<G: EvolvingGraph>(graph: &G) -> StaticGraph {
    let mut flat = StaticGraph::new(graph.num_nodes());
    for t in 0..graph.num_timestamps() {
        let ti = TimeIndex::from_index(t);
        for v in 0..graph.num_nodes() {
            let v_id = NodeId::from_index(v);
            graph.for_each_static_out(v_id, ti, &mut |w| {
                flat.add_edge_unique(v, w.index());
            });
        }
    }
    flat
}

/// Node-level reachability according to the flattened graph: the set of
/// nodes reachable from `src` ignoring time.
pub fn flat_reachable_nodes<G: EvolvingGraph>(graph: &G, src: NodeId) -> Vec<NodeId> {
    let flat = flatten(graph);
    flat.bfs_distances(src.index())
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != u32::MAX)
        .map(|(v, _)| NodeId::from_index(v))
        .collect()
}

/// Node-level reachability according to the *temporal* semantics: the set of
/// nodes reachable from any active occurrence of `src` by a temporal path.
pub fn temporal_reachable_nodes<G: EvolvingGraph>(graph: &G, src: NodeId) -> Vec<NodeId> {
    let mut reachable = vec![false; graph.num_nodes()];
    reachable[src.index()] = true;
    for t in graph.active_times(src) {
        if let Ok(map) = egraph_core::bfs::bfs(graph, egraph_core::ids::TemporalNode::new(src, t)) {
            for v in map.reached_node_ids() {
                reachable[v.index()] = true;
            }
        }
    }
    reachable
        .iter()
        .enumerate()
        .filter(|(_, &r)| r)
        .map(|(v, _)| NodeId::from_index(v))
        .collect()
}

/// Nodes the flat baseline claims are reachable from `src` but that no
/// temporal path actually reaches — the baseline's false positives.
pub fn flat_false_positives<G: EvolvingGraph>(graph: &G, src: NodeId) -> Vec<NodeId> {
    let temporal = temporal_reachable_nodes(graph, src);
    flat_reachable_nodes(graph, src)
        .into_iter()
        .filter(|v| !temporal.contains(v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::examples::{introduction_game, paper_figure1};

    #[test]
    fn flattening_unions_all_snapshots() {
        let g = paper_figure1();
        let flat = flatten(&g);
        assert_eq!(flat.num_edges(), 3);
        assert!(flat.has_edge(0, 1));
        assert!(flat.has_edge(0, 2));
        assert!(flat.has_edge(1, 2));
    }

    #[test]
    fn temporal_reachability_is_a_subset_of_flat_reachability() {
        let g = paper_figure1();
        for v in 0..3u32 {
            let flat = flat_reachable_nodes(&g, NodeId(v));
            for t in temporal_reachable_nodes(&g, NodeId(v)) {
                assert!(flat.contains(&t), "node {t:?} temporal but not flat");
            }
        }
    }

    #[test]
    fn message_game_exposes_the_flat_baselines_false_positive() {
        // When 2 talks to 3 *before* 1 talks to 2, player 3 can never get
        // message a — but the flattened graph still has the path 1 → 2 → 3.
        let bad = introduction_game(false);
        let false_positives = flat_false_positives(&bad, NodeId(0));
        assert!(
            false_positives.contains(&NodeId(2)),
            "flat BFS should wrongly claim player 3 is reachable"
        );
        // With the right ordering there is no discrepancy for player 1.
        let good = introduction_game(true);
        assert!(flat_false_positives(&good, NodeId(0)).is_empty());
    }

    #[test]
    fn flat_and_temporal_agree_on_the_paper_example_roots() {
        // The Figure 1 graph happens to have no false positives from node 1
        // because every flat path is realisable in time order.
        let g = paper_figure1();
        assert!(flat_false_positives(&g, NodeId(0)).is_empty());
    }
}
