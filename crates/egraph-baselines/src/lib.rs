//! # egraph-baselines
//!
//! The "wrong ways" to search an evolving graph, implemented as honest
//! baselines so the paper's correctness arguments become executable
//! comparisons:
//!
//! * [`naive_product`] — path counting by sums of adjacency-matrix products
//!   (Equation 2) and by identity-padded products; both miscount temporal
//!   paths (Section III-A);
//! * [`flat_bfs`] — BFS on the time-flattened union graph, which ignores
//!   causality and over-approximates reachability;
//! * [`mod@snapshot_bfs`] — per-snapshot static BFS, which drops causal edges
//!   and under-approximates reachability.
//!
//! The `naive_vs_correct` benchmark and several integration/property tests
//! are built on these.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod flat_bfs;
pub mod naive_product;
pub mod snapshot_bfs;

pub use flat_bfs::{flat_false_positives, flat_reachable_nodes, flatten, temporal_reachable_nodes};
pub use naive_product::{
    correct_path_count, disagreement_rate, discrepancy_table, naive_path_count, NaiveScheme,
};
pub use snapshot_bfs::{missed_by_snapshot_bfs, snapshot_bfs, snapshot_graph};
