//! Baseline: naïve adjacency-product path counting (Equation 2).
//!
//! This is the "wrong way" the paper's title alludes to: treat the evolving
//! graph as a bag of per-snapshot adjacency matrices and hope that sums of
//! their products count temporal paths the way powers of a static adjacency
//! matrix count static paths. The matrix machinery lives in
//! `egraph_matrix::naive_sum`; this module wraps it in the same
//! "count paths between two temporal end points" interface as the correct
//! counter so tests and benchmarks can swap one for the other and measure
//! the discrepancy.

use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::NodeId;
use egraph_matrix::naive_sum::{identity_padded_product, naive_path_sum};

/// Which naïve construction to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NaiveScheme {
    /// Equation (2): sums of products `A[t1] ⋯ A[tn]` over increasing chains
    /// of snapshots.
    PathSum,
    /// The identity-padded product `Π_t (A[t] + I)`, which lets nodes wait —
    /// including inactive ones.
    IdentityPadded,
}

/// The naïve "number of temporal paths from `(src, t_first)` to
/// `(dst, t_last)`" according to `scheme`. Both schemes only answer the
/// question for the first and last snapshot (that is all Equation 2 is
/// defined for), which is also all the paper's counter-example needs.
pub fn naive_path_count<G: EvolvingGraph>(
    graph: &G,
    scheme: NaiveScheme,
    src: NodeId,
    dst: NodeId,
) -> f64 {
    let m = match scheme {
        NaiveScheme::PathSum => naive_path_sum(graph),
        NaiveScheme::IdentityPadded => identity_padded_product(graph),
    };
    if src.index() >= m.rows() || dst.index() >= m.cols() {
        return 0.0;
    }
    m.get(src.index(), dst.index())
}

/// The correct count of temporal paths from the first to the last snapshot
/// between two node identifiers: total over all path lengths, computed from
/// the block matrix via `egraph_matrix::path_count::total_path_count`.
pub fn correct_path_count<G: EvolvingGraph>(graph: &G, src: NodeId, dst: NodeId) -> f64 {
    if graph.num_timestamps() == 0 {
        return 0.0;
    }
    let first = egraph_core::ids::TemporalNode::new(src, egraph_core::ids::TimeIndex(0));
    let last = egraph_core::ids::TemporalNode::new(
        dst,
        egraph_core::ids::TimeIndex::from_index(graph.num_timestamps() - 1),
    );
    egraph_matrix::path_count::total_path_count(graph, first, last)
}

/// For every ordered node pair, the triple
/// `(naïve count, padded count, correct count)`. Used by the
/// `naive_vs_correct` benchmark and by tests that quantify how often the
/// naïve schemes are wrong.
pub fn discrepancy_table<G: EvolvingGraph>(graph: &G) -> Vec<(NodeId, NodeId, f64, f64, f64)> {
    let sum = naive_path_sum(graph);
    let padded = identity_padded_product(graph);
    let mut out = Vec::new();
    for s in 0..graph.num_nodes() {
        for d in 0..graph.num_nodes() {
            let src = NodeId::from_index(s);
            let dst = NodeId::from_index(d);
            let correct = correct_path_count(graph, src, dst);
            out.push((src, dst, sum.get(s, d), padded.get(s, d), correct));
        }
    }
    out
}

/// Fraction of ordered node pairs on which a naïve scheme disagrees with the
/// correct count.
pub fn disagreement_rate<G: EvolvingGraph>(graph: &G, scheme: NaiveScheme) -> f64 {
    let table = discrepancy_table(graph);
    if table.is_empty() {
        return 0.0;
    }
    let wrong = table
        .iter()
        .filter(|&&(_, _, s, p, c)| {
            let naive = match scheme {
                NaiveScheme::PathSum => s,
                NaiveScheme::IdentityPadded => p,
            };
            (naive - c).abs() > 1e-9
        })
        .count();
    wrong as f64 / table.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::examples::paper_figure1;

    #[test]
    fn paper_counter_example_shows_the_undercount() {
        let g = paper_figure1();
        // Naïve: 1 path from node 1 to node 3 across the full time span;
        // correct: 2.
        assert_eq!(
            naive_path_count(&g, NaiveScheme::PathSum, NodeId(0), NodeId(2)),
            1.0
        );
        assert_eq!(correct_path_count(&g, NodeId(0), NodeId(2)), 2.0);
    }

    #[test]
    fn identity_padding_overcounts_through_inactive_nodes() {
        let g = paper_figure1();
        // There is no temporal path from (3, t1) to (3, t3) because (3, t1)
        // is inactive — yet the padded product claims one.
        assert!(naive_path_count(&g, NaiveScheme::IdentityPadded, NodeId(2), NodeId(2)) >= 1.0);
        assert_eq!(correct_path_count(&g, NodeId(2), NodeId(2)), 0.0);
    }

    #[test]
    fn both_naive_schemes_disagree_somewhere_on_the_paper_example() {
        let g = paper_figure1();
        assert!(disagreement_rate(&g, NaiveScheme::PathSum) > 0.0);
        assert!(disagreement_rate(&g, NaiveScheme::IdentityPadded) > 0.0);
    }

    #[test]
    fn discrepancy_table_covers_every_ordered_pair() {
        let g = paper_figure1();
        let table = discrepancy_table(&g);
        assert_eq!(table.len(), 9);
        // The (1,3) row of the paper: naive 1, correct 2.
        let row = table
            .iter()
            .find(|&&(s, d, ..)| s == NodeId(0) && d == NodeId(2))
            .unwrap();
        assert_eq!(row.2, 1.0);
        assert_eq!(row.4, 2.0);
    }

    #[test]
    fn out_of_range_queries_return_zero() {
        let g = paper_figure1();
        assert_eq!(
            naive_path_count(&g, NaiveScheme::PathSum, NodeId(9), NodeId(0)),
            0.0
        );
    }
}
