//! Synthetic citation corpora for the Section V application.
//!
//! The paper sketches the citation-network use case qualitatively: nodes are
//! authors active at a given time, a directed edge `(i, j)` at time `t` means
//! "author `i` cites author `j` in a publication at time `t`", and the
//! evolving-graph BFS then yields influence sets and communities. The paper
//! reports no dataset, so the reproduction substitutes a synthetic corpus
//! with the qualitative properties that matter for exercising the code path:
//!
//! * authors enter the field over time (each has a debut epoch);
//! * citations point backward in career time (you cite people who have
//!   already published) with a recency bias;
//! * citation targets are preferentially attached, so a few authors become
//!   highly influential.
//!
//! The output is a plain list of [`CitationEvent`]s; `egraph-citation` turns
//! it into an evolving graph and runs the influence analyses.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One citation: `citing` cites `cited` in a publication at `epoch`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CitationEvent {
    /// The citing author.
    pub citing: u32,
    /// The cited author.
    pub cited: u32,
    /// The epoch (snapshot label) of the citing publication.
    pub epoch: i64,
}

/// Parameters of the synthetic citation corpus.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CitationConfig {
    /// Number of authors in the field.
    pub num_authors: usize,
    /// Number of publication epochs.
    pub num_epochs: usize,
    /// Number of citing publications per epoch.
    pub papers_per_epoch: usize,
    /// Citations emitted by each publication.
    pub citations_per_paper: usize,
    /// Strength of the preferential-attachment bias toward already-cited
    /// authors (0 = uniform, larger = more skewed).
    pub preferential_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CitationConfig {
    fn default() -> Self {
        CitationConfig {
            num_authors: 2_000,
            num_epochs: 30,
            papers_per_epoch: 100,
            citations_per_paper: 5,
            preferential_bias: 1.0,
            seed: 0xC17E,
        }
    }
}

/// A generated corpus: the events plus the debut epoch of every author.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CitationCorpus {
    /// All citation events, ordered by epoch.
    pub events: Vec<CitationEvent>,
    /// `debut[a]` = first epoch at which author `a` may publish or be cited.
    pub debut: Vec<i64>,
    /// Number of authors.
    pub num_authors: usize,
    /// Number of epochs.
    pub num_epochs: usize,
}

/// Generates a synthetic citation corpus.
pub fn synthetic_citation_corpus(config: &CitationConfig) -> CitationCorpus {
    assert!(config.num_authors >= 2, "need at least two authors");
    assert!(config.num_epochs >= 1, "need at least one epoch");
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // Authors debut uniformly over the first three quarters of the timeline
    // so that late epochs still have newcomers but early epochs are not empty.
    let debut: Vec<i64> = (0..config.num_authors)
        .map(|_| rng.gen_range(0..config.num_epochs.max(1) as i64 * 3 / 4 + 1))
        .collect();

    // cite_weight[a] = 1 + bias * (times cited so far), for preferential
    // target selection.
    let mut cited_counts: Vec<f64> = vec![0.0; config.num_authors];
    let mut events = Vec::new();

    for epoch in 0..config.num_epochs as i64 {
        // Authors eligible to act at this epoch.
        let eligible: Vec<u32> = (0..config.num_authors as u32)
            .filter(|&a| debut[a as usize] <= epoch)
            .collect();
        if eligible.len() < 2 {
            continue;
        }
        for _ in 0..config.papers_per_epoch {
            let citing = eligible[rng.gen_range(0..eligible.len())];
            for _ in 0..config.citations_per_paper {
                let cited =
                    sample_target(&eligible, &cited_counts, config.preferential_bias, &mut rng);
                if cited == citing {
                    continue;
                }
                events.push(CitationEvent {
                    citing,
                    cited,
                    epoch,
                });
                cited_counts[cited as usize] += 1.0;
            }
        }
    }

    CitationCorpus {
        events,
        debut,
        num_authors: config.num_authors,
        num_epochs: config.num_epochs,
    }
}

fn sample_target(eligible: &[u32], cited_counts: &[f64], bias: f64, rng: &mut SmallRng) -> u32 {
    let total: f64 = eligible
        .iter()
        .map(|&a| 1.0 + bias * cited_counts[a as usize])
        .sum();
    let mut target = rng.gen_range(0.0..total);
    for &a in eligible {
        let w = 1.0 + bias * cited_counts[a as usize];
        if target < w {
            return a;
        }
        target -= w;
    }
    *eligible.last().expect("eligible set is non-empty")
}

impl CitationCorpus {
    /// The events as `(citing, cited, epoch)` triples — the input format of
    /// [`egraph_core::adjacency::AdjacencyListGraph::from_labeled_edges`].
    pub fn labeled_edges(&self) -> Vec<(u32, u32, i64)> {
        self.events
            .iter()
            .map(|e| (e.citing, e.cited, e.epoch))
            .collect()
    }

    /// The number of citation events.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// How many times each author is cited in total.
    pub fn citation_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_authors];
        for e in &self.events {
            counts[e.cited as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CitationConfig {
        CitationConfig {
            num_authors: 100,
            num_epochs: 10,
            papers_per_epoch: 20,
            citations_per_paper: 3,
            preferential_bias: 1.0,
            seed: 42,
        }
    }

    #[test]
    fn corpus_has_events_in_every_late_epoch() {
        let corpus = synthetic_citation_corpus(&small_config());
        assert!(corpus.num_events() > 0);
        let last_epoch = corpus.num_epochs as i64 - 1;
        assert!(corpus.events.iter().any(|e| e.epoch == last_epoch));
    }

    #[test]
    fn citations_never_point_at_the_citing_author() {
        let corpus = synthetic_citation_corpus(&small_config());
        assert!(corpus.events.iter().all(|e| e.citing != e.cited));
    }

    #[test]
    fn citations_respect_debut_epochs() {
        let corpus = synthetic_citation_corpus(&small_config());
        for e in &corpus.events {
            assert!(corpus.debut[e.citing as usize] <= e.epoch);
            assert!(corpus.debut[e.cited as usize] <= e.epoch);
        }
    }

    #[test]
    fn preferential_bias_skews_citation_counts() {
        let uniform = synthetic_citation_corpus(&CitationConfig {
            preferential_bias: 0.0,
            ..small_config()
        });
        let skewed = synthetic_citation_corpus(&CitationConfig {
            preferential_bias: 5.0,
            ..small_config()
        });
        let max_uniform = *uniform.citation_counts().iter().max().unwrap();
        let max_skewed = *skewed.citation_counts().iter().max().unwrap();
        assert!(
            max_skewed > max_uniform,
            "skewed max {max_skewed} should exceed uniform max {max_uniform}"
        );
    }

    #[test]
    fn deterministic_given_a_seed() {
        let a = synthetic_citation_corpus(&small_config());
        let b = synthetic_citation_corpus(&small_config());
        assert_eq!(a.events, b.events);
        assert_eq!(a.debut, b.debut);
    }

    #[test]
    fn labeled_edges_match_events() {
        let corpus = synthetic_citation_corpus(&small_config());
        let edges = corpus.labeled_edges();
        assert_eq!(edges.len(), corpus.num_events());
        assert_eq!(edges[0].0, corpus.events[0].citing);
    }
}
