//! Per-snapshot Erdős–Rényi evolving graphs.
//!
//! Each snapshot is an independent `G(n, p)` directed random graph. Unlike
//! the uniform-edge-count generator of [`crate::random`], the *expected*
//! density is controlled per snapshot, which is the natural null model when
//! studying how activeness and causal edges interact with density (the
//! ABL-A ablation sweeps `p`).

use egraph_core::adjacency::AdjacencyListGraph;
use egraph_core::ids::{NodeId, TimeIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of a per-snapshot Erdős–Rényi evolving graph.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ErConfig {
    /// Size of the node universe.
    pub num_nodes: usize,
    /// Number of snapshots.
    pub num_timestamps: usize,
    /// Probability that any given ordered pair `(u, v)`, `u ≠ v`, is an edge
    /// of a given snapshot.
    pub edge_probability: f64,
    /// Whether edges are directed.
    pub directed: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ErConfig {
    fn default() -> Self {
        ErConfig {
            num_nodes: 100,
            num_timestamps: 5,
            edge_probability: 0.05,
            directed: true,
            seed: 0xE12,
        }
    }
}

/// Generates a per-snapshot Erdős–Rényi evolving graph.
///
/// For directed graphs every ordered pair is sampled; for undirected graphs
/// every unordered pair is sampled once.
pub fn erdos_renyi_evolving(config: &ErConfig) -> AdjacencyListGraph {
    assert!(
        (0.0..=1.0).contains(&config.edge_probability),
        "edge_probability must lie in [0, 1]"
    );
    let mut g = if config.directed {
        AdjacencyListGraph::directed_with_unit_times(config.num_nodes, config.num_timestamps)
    } else {
        AdjacencyListGraph::undirected_with_unit_times(config.num_nodes, config.num_timestamps)
    };
    let mut rng = SmallRng::seed_from_u64(config.seed);
    for t in 0..config.num_timestamps {
        for u in 0..config.num_nodes {
            let vs: std::ops::Range<usize> = if config.directed {
                0..config.num_nodes
            } else {
                (u + 1)..config.num_nodes
            };
            for v in vs {
                if u == v {
                    continue;
                }
                if rng.gen_bool(config.edge_probability) {
                    g.add_edge(NodeId(u as u32), NodeId(v as u32), TimeIndex(t as u32))
                        .expect("generated edge is always in range");
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::graph::EvolvingGraph;

    #[test]
    fn extreme_probabilities_give_empty_and_complete_snapshots() {
        let empty = erdos_renyi_evolving(&ErConfig {
            num_nodes: 10,
            num_timestamps: 3,
            edge_probability: 0.0,
            directed: true,
            seed: 1,
        });
        assert_eq!(empty.num_static_edges(), 0);

        let full = erdos_renyi_evolving(&ErConfig {
            num_nodes: 6,
            num_timestamps: 2,
            edge_probability: 1.0,
            directed: true,
            seed: 1,
        });
        assert_eq!(full.num_static_edges(), 2 * 6 * 5);
        // Every node is active at every snapshot in the complete case.
        assert_eq!(full.num_active_nodes(), 12);
    }

    #[test]
    fn undirected_complete_graph_counts_each_edge_once() {
        let full = erdos_renyi_evolving(&ErConfig {
            num_nodes: 5,
            num_timestamps: 1,
            edge_probability: 1.0,
            directed: false,
            seed: 1,
        });
        assert_eq!(full.num_static_edges(), 5 * 4 / 2);
    }

    #[test]
    fn density_is_close_to_the_requested_probability() {
        let p = 0.1;
        let n = 60usize;
        let n_t = 4usize;
        let g = erdos_renyi_evolving(&ErConfig {
            num_nodes: n,
            num_timestamps: n_t,
            edge_probability: p,
            directed: true,
            seed: 99,
        });
        let expected = p * (n * (n - 1) * n_t) as f64;
        let got = g.num_static_edges() as f64;
        assert!(
            (got - expected).abs() < 0.25 * expected,
            "got {got}, expected ≈ {expected}"
        );
    }

    #[test]
    fn deterministic_given_a_seed() {
        let c = ErConfig::default();
        assert_eq!(
            erdos_renyi_evolving(&c).edge_triples(),
            erdos_renyi_evolving(&c).edge_triples()
        );
    }

    #[test]
    #[should_panic(expected = "edge_probability")]
    fn rejects_out_of_range_probability() {
        let _ = erdos_renyi_evolving(&ErConfig {
            edge_probability: 1.5,
            ..ErConfig::default()
        });
    }
}
