//! Uniform random evolving graphs — the workload of the paper's Figure 5.
//!
//! The linear-scaling experiment of Section IV generates "a sequence of
//! random (directed) `IntEvolvingGraph`s with 10⁵ active nodes and 10 time
//! stamps", starting at roughly 10⁸ static edges and consecutively adding
//! more random static edges. The essential shape is: a fixed node universe,
//! a fixed set of snapshots, and a target number of uniformly random
//! `(src, dst, time)` edges. [`uniform_random_graph`] reproduces that shape
//! at a configurable scale; [`extend_with_random_edges`] performs the
//! "consecutively add new random static edges" step used both by Figure 5
//! and by the incremental-update ablation.

use egraph_core::adjacency::AdjacencyListGraph;
use egraph_core::ids::{NodeId, TimeIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of a uniform random evolving graph.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UniformRandomConfig {
    /// Size of the node universe.
    pub num_nodes: usize,
    /// Number of snapshots.
    pub num_timestamps: usize,
    /// Number of static edges to draw (uniformly over node pairs and
    /// snapshots). Parallel edges are allowed, as in the paper's generator,
    /// where only the static edge count is controlled.
    pub num_edges: usize,
    /// Whether the graph is directed (Figure 5 uses directed graphs).
    pub directed: bool,
    /// RNG seed, so experiments are reproducible.
    pub seed: u64,
}

impl Default for UniformRandomConfig {
    fn default() -> Self {
        UniformRandomConfig {
            num_nodes: 1_000,
            num_timestamps: 10,
            num_edges: 10_000,
            directed: true,
            seed: 0x5EED,
        }
    }
}

/// Generates a uniform random evolving graph according to `config`.
pub fn uniform_random_graph(config: &UniformRandomConfig) -> AdjacencyListGraph {
    assert!(config.num_nodes >= 2, "need at least two nodes");
    assert!(config.num_timestamps >= 1, "need at least one snapshot");
    let mut g = if config.directed {
        AdjacencyListGraph::directed_with_unit_times(config.num_nodes, config.num_timestamps)
    } else {
        AdjacencyListGraph::undirected_with_unit_times(config.num_nodes, config.num_timestamps)
    };
    let mut rng = SmallRng::seed_from_u64(config.seed);
    add_random_edges(&mut g, config.num_edges, &mut rng);
    g
}

/// The Figure 5 workload at a given scale: a directed uniform random evolving
/// graph with the requested node count, snapshot count and static edge count.
pub fn figure5_workload(
    num_nodes: usize,
    num_timestamps: usize,
    num_edges: usize,
    seed: u64,
) -> AdjacencyListGraph {
    uniform_random_graph(&UniformRandomConfig {
        num_nodes,
        num_timestamps,
        num_edges,
        directed: true,
        seed,
    })
}

/// Adds `count` additional uniformly random static edges to an existing
/// graph — the "consecutively add new random static edges" step of the
/// Figure 5 experiment.
pub fn extend_with_random_edges(graph: &mut AdjacencyListGraph, count: usize, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    add_random_edges(graph, count, &mut rng);
}

fn add_random_edges(graph: &mut AdjacencyListGraph, count: usize, rng: &mut SmallRng) {
    use egraph_core::graph::EvolvingGraph;
    let n = graph.num_nodes();
    let n_t = graph.num_timestamps();
    let mut added = 0usize;
    while added < count {
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u == v {
            continue;
        }
        let t = rng.gen_range(0..n_t) as u32;
        graph
            .add_edge(NodeId(u), NodeId(v), TimeIndex(t))
            .expect("generated edge is always in range");
        added += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::graph::EvolvingGraph;

    #[test]
    fn generates_the_requested_number_of_edges() {
        let g = uniform_random_graph(&UniformRandomConfig {
            num_nodes: 50,
            num_timestamps: 5,
            num_edges: 400,
            directed: true,
            seed: 1,
        });
        assert_eq!(g.num_static_edges(), 400);
        assert_eq!(g.num_nodes(), 50);
        assert_eq!(g.num_timestamps(), 5);
    }

    #[test]
    fn same_seed_same_graph_different_seed_different_graph() {
        let c = UniformRandomConfig {
            num_nodes: 30,
            num_timestamps: 3,
            num_edges: 100,
            directed: true,
            seed: 7,
        };
        let a = uniform_random_graph(&c);
        let b = uniform_random_graph(&c);
        assert_eq!(a.edge_triples(), b.edge_triples());
        let c2 = UniformRandomConfig { seed: 8, ..c };
        let d = uniform_random_graph(&c2);
        assert_ne!(a.edge_triples(), d.edge_triples());
    }

    #[test]
    fn no_self_loops_are_generated() {
        let g = uniform_random_graph(&UniformRandomConfig {
            num_nodes: 10,
            num_timestamps: 2,
            num_edges: 300,
            directed: true,
            seed: 3,
        });
        assert!(g.edge_triples().iter().all(|&(u, v, _)| u != v));
    }

    #[test]
    fn extension_adds_exactly_the_requested_edges() {
        let mut g = figure5_workload(40, 4, 200, 11);
        extend_with_random_edges(&mut g, 150, 12);
        assert_eq!(g.num_static_edges(), 350);
    }

    #[test]
    fn undirected_generation_works() {
        let g = uniform_random_graph(&UniformRandomConfig {
            num_nodes: 20,
            num_timestamps: 2,
            num_edges: 50,
            directed: false,
            seed: 5,
        });
        assert!(!g.is_directed());
        assert_eq!(g.num_static_edges(), 50);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_degenerate_universe() {
        let _ = uniform_random_graph(&UniformRandomConfig {
            num_nodes: 1,
            num_timestamps: 1,
            num_edges: 1,
            directed: true,
            seed: 0,
        });
    }
}
