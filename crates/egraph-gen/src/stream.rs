//! Incremental edge streams.
//!
//! The Figure 5 experiment grows one evolving graph by repeatedly adding
//! random static edges and re-running BFS after each growth step. The
//! incremental-update ablation (ABL-C in DESIGN.md) needs the same pattern as
//! a reusable object: a deterministic stream of edge batches that can either
//! be applied incrementally to one [`AdjacencyListGraph`] or replayed from
//! scratch, so the two strategies can be compared.

use egraph_core::adjacency::AdjacencyListGraph;
use egraph_core::ids::{NodeId, TimeIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic stream of random edge batches over a fixed node universe
/// and snapshot set.
#[derive(Clone, Debug)]
pub struct EdgeStream {
    num_nodes: usize,
    num_timestamps: usize,
    batch_size: usize,
    rng: SmallRng,
}

impl EdgeStream {
    /// Creates a stream producing batches of `batch_size` random edges.
    pub fn new(num_nodes: usize, num_timestamps: usize, batch_size: usize, seed: u64) -> Self {
        assert!(num_nodes >= 2, "need at least two nodes");
        assert!(num_timestamps >= 1, "need at least one snapshot");
        EdgeStream {
            num_nodes,
            num_timestamps,
            batch_size,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Node universe size the stream draws from.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Snapshot count the stream draws from.
    pub fn num_timestamps(&self) -> usize {
        self.num_timestamps
    }

    /// Produces the next batch of `(src, dst, time_index)` edges.
    pub fn next_batch(&mut self) -> Vec<(u32, u32, u32)> {
        let mut batch = Vec::with_capacity(self.batch_size);
        while batch.len() < self.batch_size {
            let u = self.rng.gen_range(0..self.num_nodes) as u32;
            let v = self.rng.gen_range(0..self.num_nodes) as u32;
            if u == v {
                continue;
            }
            let t = self.rng.gen_range(0..self.num_timestamps) as u32;
            batch.push((u, v, t));
        }
        batch
    }

    /// An empty graph matching the stream's universe, ready to apply batches
    /// to.
    pub fn empty_graph(&self) -> AdjacencyListGraph {
        AdjacencyListGraph::directed_with_unit_times(self.num_nodes, self.num_timestamps)
    }
}

/// Applies a batch of edges to an existing graph (the *incremental* strategy).
pub fn apply_batch(graph: &mut AdjacencyListGraph, batch: &[(u32, u32, u32)]) {
    for &(u, v, t) in batch {
        graph
            .add_edge(NodeId(u), NodeId(v), TimeIndex(t))
            .expect("stream edges are always in range");
    }
}

/// Builds a graph from scratch out of all batches seen so far (the *rebuild*
/// strategy the ablation compares against).
pub fn rebuild_from_batches(
    num_nodes: usize,
    num_timestamps: usize,
    batches: &[Vec<(u32, u32, u32)>],
) -> AdjacencyListGraph {
    let mut g = AdjacencyListGraph::directed_with_unit_times(num_nodes, num_timestamps);
    for batch in batches {
        apply_batch(&mut g, batch);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::graph::EvolvingGraph;

    #[test]
    fn batches_have_the_requested_size_and_no_self_loops() {
        let mut stream = EdgeStream::new(50, 5, 120, 3);
        let batch = stream.next_batch();
        assert_eq!(batch.len(), 120);
        assert!(batch.iter().all(|&(u, v, _)| u != v));
    }

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = EdgeStream::new(30, 3, 40, 9);
        let mut b = EdgeStream::new(30, 3, 40, 9);
        assert_eq!(a.next_batch(), b.next_batch());
        assert_eq!(a.next_batch(), b.next_batch());
    }

    #[test]
    fn incremental_application_equals_rebuild() {
        let mut stream = EdgeStream::new(40, 4, 60, 17);
        let mut incremental = stream.empty_graph();
        let mut batches = Vec::new();
        for _ in 0..5 {
            let batch = stream.next_batch();
            apply_batch(&mut incremental, &batch);
            batches.push(batch);
        }
        let rebuilt = rebuild_from_batches(40, 4, &batches);
        assert_eq!(incremental.num_static_edges(), rebuilt.num_static_edges());
        assert_eq!(incremental.edge_triples(), rebuilt.edge_triples());
        assert_eq!(incremental.active_nodes(), rebuilt.active_nodes());
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_degenerate_universe() {
        let _ = EdgeStream::new(1, 1, 10, 0);
    }
}
