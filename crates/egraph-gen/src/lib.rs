//! # egraph-gen
//!
//! Workload generators for evolving-graph experiments.
//!
//! Every generator is deterministic given its seed, so benchmark series and
//! property tests are reproducible run to run:
//!
//! * [`random`] — uniform random temporal edges, the workload of the paper's
//!   Figure 5 linear-scaling experiment, plus incremental extension;
//! * [`er`] — per-snapshot Erdős–Rényi graphs with controlled density;
//! * [`preferential`] — temporal preferential attachment (heavy-tailed
//!   in-degrees);
//! * [`citation`] — synthetic citation corpora for the Section V
//!   application (authors with debut epochs, recency/preferential citation
//!   targets);
//! * [`stream`] — deterministic edge-batch streams for incremental-update
//!   experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod citation;
pub mod er;
pub mod preferential;
pub mod random;
pub mod stream;

pub use citation::{synthetic_citation_corpus, CitationConfig, CitationCorpus, CitationEvent};
pub use er::{erdos_renyi_evolving, ErConfig};
pub use preferential::{preferential_attachment, PreferentialConfig};
pub use random::{
    extend_with_random_edges, figure5_workload, uniform_random_graph, UniformRandomConfig,
};
pub use stream::{apply_batch, rebuild_from_batches, EdgeStream};

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::citation::{
        synthetic_citation_corpus, CitationConfig, CitationCorpus, CitationEvent,
    };
    pub use crate::er::{erdos_renyi_evolving, ErConfig};
    pub use crate::preferential::{preferential_attachment, PreferentialConfig};
    pub use crate::random::{
        extend_with_random_edges, figure5_workload, uniform_random_graph, UniformRandomConfig,
    };
    pub use crate::stream::{apply_batch, rebuild_from_batches, EdgeStream};
}
