//! Temporal preferential attachment.
//!
//! Citation-style networks are not uniform: highly cited authors attract
//! further citations. This generator grows an evolving graph snapshot by
//! snapshot, attaching each new edge to an existing node with probability
//! proportional to its accumulated in-degree plus one (the "plus one" keeps
//! fresh nodes reachable). The result has the heavy-tailed in-degree
//! distribution that the Section V application assumes qualitatively, and it
//! drives the `citation_mining` benchmark alongside the synthetic corpus of
//! [`crate::citation`].

use egraph_core::adjacency::AdjacencyListGraph;
use egraph_core::ids::{NodeId, TimeIndex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of a temporal preferential-attachment graph.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PreferentialConfig {
    /// Size of the node universe.
    pub num_nodes: usize,
    /// Number of snapshots.
    pub num_timestamps: usize,
    /// Number of edges added per snapshot.
    pub edges_per_timestamp: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PreferentialConfig {
    fn default() -> Self {
        PreferentialConfig {
            num_nodes: 500,
            num_timestamps: 10,
            edges_per_timestamp: 500,
            seed: 0xBA5E,
        }
    }
}

/// Generates a directed evolving graph by temporal preferential attachment.
///
/// At each snapshot, `edges_per_timestamp` edges are added. The source of
/// each edge is a uniformly random node; the destination is sampled with
/// probability proportional to `in_degree + 1`, accumulated over all
/// snapshots generated so far.
pub fn preferential_attachment(config: &PreferentialConfig) -> AdjacencyListGraph {
    assert!(config.num_nodes >= 2, "need at least two nodes");
    let mut g =
        AdjacencyListGraph::directed_with_unit_times(config.num_nodes, config.num_timestamps);
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // in_weight[v] = accumulated in-degree + 1.
    let mut in_weight: Vec<u64> = vec![1; config.num_nodes];
    let mut total_weight: u64 = config.num_nodes as u64;

    for t in 0..config.num_timestamps {
        for _ in 0..config.edges_per_timestamp {
            let src = rng.gen_range(0..config.num_nodes);
            // Weighted sample of the destination.
            let mut target = rng.gen_range(0..total_weight);
            let mut dst = 0usize;
            for (v, &w) in in_weight.iter().enumerate() {
                if target < w {
                    dst = v;
                    break;
                }
                target -= w;
            }
            if dst == src {
                continue;
            }
            g.add_edge(NodeId(src as u32), NodeId(dst as u32), TimeIndex(t as u32))
                .expect("generated edge is always in range");
            in_weight[dst] += 1;
            total_weight += 1;
        }
    }
    g
}

/// The accumulated in-degree of every node over all snapshots — handy for
/// checking the skew the generator produces.
pub fn total_in_degrees(graph: &AdjacencyListGraph) -> Vec<usize> {
    use egraph_core::graph::EvolvingGraph;
    let mut deg = vec![0usize; graph.num_nodes()];
    for (_, dst, _) in graph.edge_triples() {
        deg[dst.index()] += 1;
    }
    deg
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::graph::EvolvingGraph;

    #[test]
    fn produces_roughly_the_requested_edge_count() {
        let c = PreferentialConfig {
            num_nodes: 100,
            num_timestamps: 5,
            edges_per_timestamp: 200,
            seed: 4,
        };
        let g = preferential_attachment(&c);
        // A small number of draws are discarded as accidental self-loops.
        let requested = c.num_timestamps * c.edges_per_timestamp;
        assert!(g.num_static_edges() <= requested);
        assert!(g.num_static_edges() as f64 >= 0.9 * requested as f64);
    }

    #[test]
    fn in_degree_distribution_is_skewed() {
        let g = preferential_attachment(&PreferentialConfig {
            num_nodes: 200,
            num_timestamps: 8,
            edges_per_timestamp: 400,
            seed: 21,
        });
        let mut deg = total_in_degrees(&g);
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: usize = deg[..20].iter().sum();
        let total: usize = deg.iter().sum();
        // Preferential attachment concentrates citations: the top 10% of
        // nodes should hold well over 10% of the in-degree mass.
        assert!(
            top_decile as f64 > 0.2 * total as f64,
            "top decile holds {top_decile} of {total}"
        );
    }

    #[test]
    fn deterministic_given_a_seed() {
        let c = PreferentialConfig::default();
        assert_eq!(
            preferential_attachment(&c).edge_triples(),
            preferential_attachment(&c).edge_triples()
        );
    }

    #[test]
    fn no_self_loops() {
        let g = preferential_attachment(&PreferentialConfig {
            num_nodes: 50,
            num_timestamps: 3,
            edges_per_timestamp: 100,
            seed: 9,
        });
        assert!(g.edge_triples().iter().all(|&(u, v, _)| u != v));
    }
}
