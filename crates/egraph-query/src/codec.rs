//! JSON codecs for [`QueryDescriptor`] and [`SearchResult`] — the wire
//! format of the `egraph-serve` HTTP layer.
//!
//! A client ships a query as a descriptor document; the server decodes it,
//! rebuilds an executable [`Search`](crate::Search) with
//! [`QueryDescriptor::to_search`], runs it through whatever execution layer
//! it fronts, and ships the [`SearchResult`] back as a kind-tagged result
//! document. Both directions round-trip exactly:
//! `descriptor_from_json(&descriptor_to_json(d)) == d`, and a decoded result
//! answers every accessor identically to the original.
//!
//! ## Descriptor document
//!
//! ```json
//! {
//!   "sources": [[0, 0], [3, 1]],
//!   "strategy": "serial",
//!   "reverse": false,
//!   "window": {"start": 1, "end": 4},
//!   "with_parents": false
//! }
//! ```
//!
//! `strategy` is one of `"serial"`, `"parallel"`, `"algebraic"`,
//! `"foremost"`, `"shared_frontier"` (default `"serial"`); `reverse` and
//! `with_parents` default to `false`; `window` omitted (or `null`) means the
//! full graph, `{"start": s}` an open end, `{"empty": true}` the statically
//! empty window. Non-canonical windows — a `start` of `0` (which the builder
//! canonicalises away) or an inconsistent `empty` bit — are rejected rather
//! than decoded into a descriptor that would never equal a builder-produced
//! one, silently missing every cache entry.
//!
//! ## Result document
//!
//! Kind-tagged on the payload: `"hops"` carries per-source distance maps
//! (with optional BFS-tree parents), `"arrivals"` per-source foremost
//! tables, `"shared"` the single nearest-source map. All coordinates are in
//! the queried graph's snapshot indices, exactly as [`SearchResult`] stores
//! them.

use egraph_core::distance::{DistanceMap, MultiSourceMap};
use egraph_core::foremost::ForemostResult;
use egraph_core::ids::{TemporalNode, TimeIndex};
use egraph_io::json::{JsonError, Value};

use crate::builder::{Strategy, WindowSpec};
use crate::descriptor::QueryDescriptor;
use crate::result::SearchResult;

/// Result alias matching `egraph-io`'s JSON error type.
pub type Result<T> = std::result::Result<T, JsonError>;

fn shape(msg: impl Into<String>) -> JsonError {
    JsonError::Shape(msg.into())
}

// ---------------------------------------------------------------------------
// Descriptor ⇄ JSON
// ---------------------------------------------------------------------------

/// The wire name of a strategy (see the module docs).
fn strategy_name(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::Serial => "serial",
        Strategy::Parallel => "parallel",
        Strategy::Algebraic => "algebraic",
        Strategy::Foremost => "foremost",
        Strategy::SharedFrontier => "shared_frontier",
    }
}

fn strategy_from_name(name: &str) -> Result<Strategy> {
    Ok(match name {
        "serial" => Strategy::Serial,
        "parallel" => Strategy::Parallel,
        "algebraic" => Strategy::Algebraic,
        "foremost" => Strategy::Foremost,
        "shared_frontier" => Strategy::SharedFrontier,
        other => {
            return Err(shape(format!(
                "unknown strategy \"{other}\" (expected serial | parallel | algebraic | \
                 foremost | shared_frontier)"
            )))
        }
    })
}

fn temporal_node_to_value(tn: TemporalNode) -> Value {
    Value::Array(vec![
        Value::Int(tn.node.0 as i64),
        Value::Int(tn.time.0 as i64),
    ])
}

fn temporal_node_from_value(value: &Value, what: &str) -> Result<TemporalNode> {
    let pair = value.as_array(what)?;
    if pair.len() != 2 {
        return Err(shape(format!("{what} must be a [node, time] pair")));
    }
    Ok(TemporalNode::from_raw(
        pair[0].as_u32(what)?,
        pair[1].as_u32(what)?,
    ))
}

/// Encodes a descriptor as a [`Value`] (for embedding in larger documents —
/// subscription frames, request envelopes).
pub fn descriptor_to_value(descriptor: &QueryDescriptor) -> Value {
    let mut entries: Vec<(String, Value)> = Vec::new();
    entries.push((
        "sources".into(),
        Value::Array(
            descriptor
                .sources()
                .iter()
                .map(|&tn| temporal_node_to_value(tn))
                .collect(),
        ),
    ));
    entries.push((
        "strategy".into(),
        Value::String(strategy_name(descriptor.strategy()).into()),
    ));
    if descriptor.effective_reverse() {
        entries.push(("reverse".into(), Value::Bool(true)));
    }
    let window = descriptor.window();
    if window != WindowSpec::full() {
        let mut w: Vec<(String, Value)> = Vec::new();
        if let Some(s) = window.start_bound() {
            w.push(("start".into(), Value::Int(s as i64)));
        }
        if let Some(e) = window.end_bound() {
            w.push(("end".into(), Value::Int(e as i64)));
        }
        if window.is_empty_spec() {
            w.push(("empty".into(), Value::Bool(true)));
        }
        entries.push(("window".into(), Value::Object(w)));
    }
    if descriptor.with_parents() {
        entries.push(("with_parents".into(), Value::Bool(true)));
    }
    Value::Object(entries)
}

/// Encodes a descriptor as a JSON string — the `/query` request body.
pub fn descriptor_to_json(descriptor: &QueryDescriptor) -> String {
    descriptor_to_value(descriptor).to_json()
}

/// Decodes a descriptor from a [`Value`]. See the module docs for the
/// accepted document shape and defaults.
pub fn descriptor_from_value(value: &Value) -> Result<QueryDescriptor> {
    let obj = value.as_object("query descriptor")?;
    let sources = obj
        .get("sources")?
        .as_array("sources")?
        .iter()
        .map(|v| temporal_node_from_value(v, "source"))
        .collect::<Result<Vec<_>>>()?;
    if sources.is_empty() {
        return Err(shape("sources must be non-empty"));
    }
    let strategy = match obj.get_opt("strategy") {
        Some(v) => strategy_from_name(v.as_str("strategy")?)?,
        None => Strategy::Serial,
    };
    let reverse = match obj.get_opt("reverse") {
        Some(v) => v.as_bool("reverse")?,
        None => false,
    };
    let with_parents = match obj.get_opt("with_parents") {
        Some(v) => v.as_bool("with_parents")?,
        None => false,
    };
    let window = match obj.get_opt("window") {
        None => WindowSpec::full(),
        Some(v) => {
            let w = v.as_object("window")?;
            let start = w
                .get_opt("start")
                .map(|v| v.as_u32("window start"))
                .transpose()?;
            let end = w
                .get_opt("end")
                .map(|v| v.as_u32("window end"))
                .transpose()?;
            let empty = match w.get_opt("empty") {
                Some(v) => v.as_bool("window empty")?,
                None => false,
            };
            WindowSpec::from_parts(start, end, empty).ok_or_else(|| {
                shape(
                    "non-canonical window: a start of 0 must be omitted, and \"empty\" \
                     must match the bounds",
                )
            })?
        }
    };
    if with_parents && strategy != Strategy::Serial {
        return Err(shape(
            "with_parents requires the serial strategy (parents force it anyway; \
             send \"serial\" or omit the strategy)",
        ));
    }
    // Rebuild through the builder so every canonicalisation rule (and any
    // future one) applies — the decoded descriptor must be bit-identical to
    // what a local builder would produce for the same query.
    let mut search = crate::Search::from_sources(sources)
        .strategy(strategy)
        .window(window);
    if reverse {
        search = search.reverse();
    }
    if with_parents {
        search = search.with_parents();
    }
    Ok(search.descriptor())
}

/// Decodes a descriptor from a JSON string.
pub fn descriptor_from_json(json: &str) -> Result<QueryDescriptor> {
    descriptor_from_value(&egraph_io::json::parse_value(json)?)
}

// ---------------------------------------------------------------------------
// SearchResult ⇄ JSON
// ---------------------------------------------------------------------------

fn optional_time_to_value(t: Option<TimeIndex>) -> Value {
    match t {
        Some(t) => Value::Int(t.0 as i64),
        None => Value::Null,
    }
}

fn distance_map_to_value(map: &DistanceMap) -> Value {
    let mut entries: Vec<(String, Value)> = vec![
        ("root".into(), temporal_node_to_value(map.root())),
        (
            "reached".into(),
            Value::Array(
                map.reached()
                    .into_iter()
                    .map(|(tn, d)| {
                        Value::Array(vec![
                            Value::Int(tn.node.0 as i64),
                            Value::Int(tn.time.0 as i64),
                            Value::Int(d as i64),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    // Parents are not flagged on the map itself; probe for them. A map
    // built with parents gives every reached non-root node a parent, one
    // built without gives none, so any Some() means "recorded".
    let parents: Vec<Value> = map
        .reached()
        .into_iter()
        .filter_map(|(tn, _)| map.parent(tn).map(|p| (tn, p)))
        .map(|(tn, p)| {
            Value::Array(vec![
                Value::Int(tn.node.0 as i64),
                Value::Int(tn.time.0 as i64),
                Value::Int(p.node.0 as i64),
                Value::Int(p.time.0 as i64),
            ])
        })
        .collect();
    if !parents.is_empty() {
        entries.push(("parents".into(), Value::Array(parents)));
    }
    Value::Object(entries)
}

fn distance_map_from_value(
    value: &Value,
    num_nodes: usize,
    num_timestamps: usize,
) -> Result<DistanceMap> {
    let obj = value.as_object("distance map")?;
    let root = temporal_node_from_value(obj.get("root")?, "map root")?;
    let reached = obj
        .get("reached")?
        .as_array("reached")?
        .iter()
        .map(|v| {
            let triple = v.as_array("reached entry")?;
            if triple.len() != 3 {
                return Err(shape("reached entries must be [node, time, distance]"));
            }
            Ok((
                TemporalNode::from_raw(
                    triple[0].as_u32("reached node")?,
                    triple[1].as_u32("reached time")?,
                ),
                triple[2].as_u32("reached distance")?,
            ))
        })
        .collect::<Result<Vec<_>>>()?;
    for &(tn, _) in &reached {
        check_coords(tn, num_nodes, num_timestamps)?;
    }
    match obj.get_opt("parents") {
        None => Ok(DistanceMap::from_reached(
            num_nodes,
            num_timestamps,
            root,
            &reached,
        )),
        Some(parents) => {
            let mut parent_of: Vec<(TemporalNode, TemporalNode)> = parents
                .as_array("parents")?
                .iter()
                .map(|v| {
                    let quad = v.as_array("parent entry")?;
                    if quad.len() != 4 {
                        return Err(shape(
                            "parent entries must be [node, time, parent_node, parent_time]",
                        ));
                    }
                    Ok((
                        TemporalNode::from_raw(
                            quad[0].as_u32("child node")?,
                            quad[1].as_u32("child time")?,
                        ),
                        TemporalNode::from_raw(
                            quad[2].as_u32("parent node")?,
                            quad[3].as_u32("parent time")?,
                        ),
                    ))
                })
                .collect::<Result<_>>()?;
            for &(tn, p) in &parent_of {
                check_coords(tn, num_nodes, num_timestamps)?;
                check_coords(p, num_nodes, num_timestamps)?;
            }
            parent_of.sort_unstable_by_key(|(tn, _)| (tn.node.0, tn.time.0));
            let entries: Vec<(TemporalNode, u32, Option<TemporalNode>)> = reached
                .iter()
                .map(|&(tn, d)| {
                    let parent = parent_of
                        .binary_search_by_key(&(tn.node.0, tn.time.0), |(c, _)| {
                            (c.node.0, c.time.0)
                        })
                        .ok()
                        .map(|i| parent_of[i].1);
                    (tn, d, parent)
                })
                .collect();
            Ok(DistanceMap::from_reached_with_parents(
                num_nodes,
                num_timestamps,
                root,
                &entries,
            ))
        }
    }
}

/// Rejects coordinates outside the declared dimensions — constructors index
/// flat `num_nodes × num_timestamps` storage with them, so an oversized
/// coordinate from a hostile document must fail here, not panic there.
fn check_coords(tn: TemporalNode, num_nodes: usize, num_timestamps: usize) -> Result<()> {
    if tn.node.index() >= num_nodes || tn.time.index() >= num_timestamps {
        return Err(shape(format!(
            "coordinate ({}, {}) outside the declared {num_nodes} x {num_timestamps} \
             dimensions",
            tn.node.0, tn.time.0
        )));
    }
    Ok(())
}

/// Encodes a result as a [`Value`] (for embedding in subscription frames).
pub fn search_result_to_value(result: &SearchResult) -> Value {
    let reversed = result.is_time_reversed();
    if let Some(maps) = result.try_distance_maps() {
        Value::Object(vec![
            ("kind".into(), Value::String("hops".into())),
            ("reversed".into(), Value::Bool(reversed)),
            ("num_nodes".into(), Value::Int(maps[0].num_nodes() as i64)),
            (
                "num_timestamps".into(),
                Value::Int(maps[0].num_timestamps() as i64),
            ),
            (
                "maps".into(),
                Value::Array(maps.iter().map(distance_map_to_value).collect()),
            ),
        ])
    } else if let Some(tables) = result.try_foremost_results() {
        Value::Object(vec![
            ("kind".into(), Value::String("arrivals".into())),
            ("reversed".into(), Value::Bool(reversed)),
            (
                "tables".into(),
                Value::Array(
                    tables
                        .iter()
                        .map(|t| {
                            Value::Object(vec![
                                ("root".into(), temporal_node_to_value(t.root())),
                                (
                                    "arrivals".into(),
                                    Value::Array(
                                        t.arrivals()
                                            .iter()
                                            .map(|&a| optional_time_to_value(a))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    } else {
        let shared = result
            .try_shared_map()
            .expect("every payload is hops, arrivals or shared");
        Value::Object(vec![
            ("kind".into(), Value::String("shared".into())),
            ("reversed".into(), Value::Bool(reversed)),
            ("num_nodes".into(), Value::Int(shared.num_nodes() as i64)),
            (
                "num_timestamps".into(),
                Value::Int(shared.num_timestamps() as i64),
            ),
            (
                "sources".into(),
                Value::Array(
                    shared
                        .sources()
                        .iter()
                        .map(|&tn| temporal_node_to_value(tn))
                        .collect(),
                ),
            ),
            (
                "reached".into(),
                Value::Array(
                    shared
                        .reached_with_sources()
                        .into_iter()
                        .map(|(tn, d, s)| {
                            Value::Array(vec![
                                Value::Int(tn.node.0 as i64),
                                Value::Int(tn.time.0 as i64),
                                Value::Int(d as i64),
                                Value::Int(s as i64),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Encodes a result as a JSON string — the `/query` response body.
pub fn search_result_to_json(result: &SearchResult) -> String {
    search_result_to_value(result).to_json()
}

/// Decodes a result from a [`Value`]. See the module docs for the three
/// kind-tagged document shapes.
pub fn search_result_from_value(value: &Value) -> Result<SearchResult> {
    let obj = value.as_object("search result")?;
    let reversed = obj.get("reversed")?.as_bool("reversed")?;
    match obj.get("kind")?.as_str("kind")? {
        "hops" => {
            let num_nodes = obj.get("num_nodes")?.as_usize("num_nodes")?;
            let num_timestamps = obj.get("num_timestamps")?.as_usize("num_timestamps")?;
            let maps = obj
                .get("maps")?
                .as_array("maps")?
                .iter()
                .map(|v| distance_map_from_value(v, num_nodes, num_timestamps))
                .collect::<Result<Vec<_>>>()?;
            if maps.is_empty() {
                return Err(shape("maps must be non-empty"));
            }
            Ok(SearchResult::from_maps(maps, reversed))
        }
        "arrivals" => {
            let tables = obj
                .get("tables")?
                .as_array("tables")?
                .iter()
                .map(|v| {
                    let t = v.as_object("arrival table")?;
                    let root = temporal_node_from_value(t.get("root")?, "table root")?;
                    let arrivals = t
                        .get("arrivals")?
                        .as_array("arrivals")?
                        .iter()
                        .map(|a| {
                            if a.is_null() {
                                Ok(None)
                            } else {
                                Ok(Some(TimeIndex(a.as_u32("arrival")?)))
                            }
                        })
                        .collect::<Result<Vec<_>>>()?;
                    Ok(ForemostResult::from_arrivals(root, arrivals))
                })
                .collect::<Result<Vec<_>>>()?;
            if tables.is_empty() {
                return Err(shape("tables must be non-empty"));
            }
            Ok(SearchResult::from_arrivals(tables, reversed))
        }
        "shared" => {
            let num_nodes = obj.get("num_nodes")?.as_usize("num_nodes")?;
            let num_timestamps = obj.get("num_timestamps")?.as_usize("num_timestamps")?;
            let sources = obj
                .get("sources")?
                .as_array("sources")?
                .iter()
                .map(|v| temporal_node_from_value(v, "shared source"))
                .collect::<Result<Vec<_>>>()?;
            if sources.is_empty() {
                return Err(shape("sources must be non-empty"));
            }
            let entries = obj
                .get("reached")?
                .as_array("reached")?
                .iter()
                .map(|v| {
                    let quad = v.as_array("reached entry")?;
                    if quad.len() != 4 {
                        return Err(shape(
                            "shared reached entries must be [node, time, distance, source]",
                        ));
                    }
                    let tn = TemporalNode::from_raw(
                        quad[0].as_u32("reached node")?,
                        quad[1].as_u32("reached time")?,
                    );
                    check_coords(tn, num_nodes, num_timestamps)?;
                    let source = quad[3].as_usize("reached source")?;
                    if source >= sources.len() {
                        return Err(shape("reached source index out of range"));
                    }
                    Ok((tn, quad[2].as_u32("reached distance")?, source))
                })
                .collect::<Result<Vec<_>>>()?;
            Ok(SearchResult::from_shared(
                MultiSourceMap::from_entries(num_nodes, num_timestamps, sources, &entries),
                reversed,
            ))
        }
        other => Err(shape(format!(
            "unknown result kind \"{other}\" (expected hops | arrivals | shared)"
        ))),
    }
}

/// Decodes a result from a JSON string.
pub fn search_result_from_json(json: &str) -> Result<SearchResult> {
    search_result_from_value(&egraph_io::json::parse_value(json)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Search;
    use egraph_core::examples::paper_figure1;
    use egraph_core::graph::EvolvingGraph;
    use egraph_core::ids::NodeId;

    fn roots() -> (TemporalNode, TemporalNode) {
        (TemporalNode::from_raw(0, 0), TemporalNode::from_raw(1, 0))
    }

    #[test]
    // Empty windows are a legal descriptor shape and must round-trip too.
    #[allow(clippy::reversed_empty_ranges)]
    fn descriptors_round_trip_across_every_axis() {
        let (a, b) = roots();
        let searches = vec![
            Search::from(a),
            Search::from(a).strategy(Strategy::Parallel),
            Search::from(a).strategy(Strategy::Algebraic).window(1u32..),
            Search::from(a).strategy(Strategy::Foremost).reverse(),
            Search::from_sources([a, b]).strategy(Strategy::SharedFrontier),
            Search::from(a).backward().window(1u32..=2),
            Search::from(a).with_parents(),
            Search::from(a).window(3u32..3),
            Search::from(a).window(2u32..=1),
        ];
        for search in searches {
            let descriptor = search.descriptor();
            let json = descriptor_to_json(&descriptor);
            let decoded = descriptor_from_json(&json).unwrap();
            assert_eq!(decoded, descriptor, "via {json}");
            // And the rebuilt Search produces the same identity again.
            assert_eq!(decoded.to_search().descriptor(), descriptor);
        }
    }

    #[test]
    fn descriptor_defaults_decode_minimal_documents() {
        let descriptor = descriptor_from_json(r#"{"sources": [[0, 0]]}"#).unwrap();
        assert_eq!(descriptor, Search::from(roots().0).descriptor());
    }

    #[test]
    fn non_canonical_descriptors_are_rejected() {
        // A window start of 0 canonicalises away in the builder; accepting
        // it on the wire would produce a cache key nothing else ever hits.
        assert!(
            descriptor_from_json(r#"{"sources":[[0,0]],"window":{"start":0,"end":2}}"#).is_err()
        );
        assert!(
            descriptor_from_json(r#"{"sources":[[0,0]],"window":{"empty":true,"start":1}}"#)
                .is_err()
        );
        assert!(descriptor_from_json(r#"{"sources":[]}"#).is_err());
        assert!(descriptor_from_json(r#"{"sources":[[0,0]],"strategy":"bogus"}"#).is_err());
        assert!(descriptor_from_json(
            r#"{"sources":[[0,0]],"strategy":"parallel","with_parents":true}"#
        )
        .is_err());
        assert!(descriptor_from_json("[1,2]").is_err());
    }

    /// Decoded results must answer identically to the originals on the
    /// accessors the equivalence suites compare.
    fn assert_result_equivalent(original: &SearchResult, decoded: &SearchResult, g_nodes: usize) {
        assert_eq!(decoded.sources(), original.sources());
        assert_eq!(decoded.is_time_reversed(), original.is_time_reversed());
        assert_eq!(decoded.reached_node_ids(), original.reached_node_ids());
        for v in 0..g_nodes as u32 {
            assert_eq!(decoded.arrival(NodeId(v)), original.arrival(NodeId(v)));
        }
    }

    #[test]
    fn hop_results_round_trip() {
        let g = paper_figure1();
        let (a, b) = roots();
        let result = Search::from_sources([a, b]).run(&g).unwrap();
        let json = search_result_to_json(&result);
        let decoded = search_result_from_json(&json).unwrap();
        assert_result_equivalent(&result, &decoded, g.num_nodes());
        for (orig, dec) in result.distance_maps().iter().zip(decoded.distance_maps()) {
            assert_eq!(orig.as_flat_slice(), dec.as_flat_slice());
        }
    }

    #[test]
    fn parent_recording_results_round_trip_with_paths() {
        let g = paper_figure1();
        let result = Search::from(roots().0).with_parents().run(&g).unwrap();
        let decoded = search_result_from_json(&search_result_to_json(&result)).unwrap();
        let target = TemporalNode::from_raw(2, 2);
        assert_eq!(decoded.path_to(target), result.path_to(target));
        assert!(decoded.path_to(target).is_some());
    }

    #[test]
    fn foremost_results_round_trip() {
        let g = paper_figure1();
        let result = Search::from(roots().0)
            .strategy(Strategy::Foremost)
            .run(&g)
            .unwrap();
        let decoded = search_result_from_json(&search_result_to_json(&result)).unwrap();
        assert_result_equivalent(&result, &decoded, g.num_nodes());
        assert_eq!(
            decoded.foremost_results()[0].arrivals(),
            result.foremost_results()[0].arrivals()
        );
    }

    #[test]
    fn shared_results_round_trip_with_tie_breaks() {
        let g = paper_figure1();
        let (a, b) = roots();
        let result = Search::from_sources([a, b])
            .strategy(Strategy::SharedFrontier)
            .run(&g)
            .unwrap();
        let decoded = search_result_from_json(&search_result_to_json(&result)).unwrap();
        assert_result_equivalent(&result, &decoded, g.num_nodes());
        for tn in g.active_nodes() {
            assert_eq!(
                decoded.nearest_source_index(tn),
                result.nearest_source_index(tn),
                "at {tn:?}"
            );
            assert_eq!(decoded.distance(tn), result.distance(tn));
        }
    }

    #[test]
    fn hostile_result_documents_fail_cleanly() {
        // Out-of-range coordinates must not index out of the flat storage.
        assert!(search_result_from_json(
            r#"{"kind":"hops","reversed":false,"num_nodes":2,"num_timestamps":2,
                "maps":[{"root":[0,0],"reached":[[5,9,1]]}]}"#
        )
        .is_err());
        assert!(search_result_from_json(
            r#"{"kind":"shared","reversed":false,"num_nodes":2,"num_timestamps":2,
                "sources":[[0,0]],"reached":[[0,0,0,7]]}"#
        )
        .is_err());
        assert!(search_result_from_json(r#"{"kind":"nope","reversed":false}"#).is_err());
        assert!(search_result_from_json("[]").is_err());
    }
}
