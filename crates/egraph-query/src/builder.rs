//! The [`Search`] builder: a fluent, typed description of an evolving-graph
//! search, independent of the engine that executes it.

use std::sync::Arc;

use egraph_core::bfs::{bfs, bfs_with_parents, check_root, Direction};
use egraph_core::distance::MultiSourceMap;
use egraph_core::error::{GraphError, Result};
use egraph_core::foremost::{earliest_arrival, ForemostResult};
use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::{NodeId, TemporalNode, TimeIndex};
use egraph_core::par_bfs::{
    default_parallel_threshold, par_bfs_with_threshold, par_multi_source_shared_with_threshold,
};
use egraph_core::reverse::ReversedView;
use egraph_core::window::TimeWindowView;
use egraph_matrix::algebraic_bfs::algebraic_bfs;

use crate::descriptor::{QueryDescriptor, QueryExecutor};
use crate::result::SearchResult;
use crate::view_map::ViewMap;

/// Which engine executes the traversal.
///
/// The hop-distance strategies (`Serial`, `Parallel`, `Algebraic`) compute
/// identical distances (Theorem 4 of the paper; checked by the workspace's
/// strategy-equivalence suite) and differ only in execution profile. The
/// query-shaped strategies (`Foremost`, `SharedFrontier`) answer a
/// *restriction* of the query natively — arrival times only, or
/// nearest-source distances only — with strictly less work than deriving the
/// same answers from full per-source hop maps; dedicated differential suites
/// pin them to the hop engines. See the crate-level "choosing a strategy"
/// table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// Algorithm 1: serial adjacency-list BFS, `O(|E| + |V|)` (Theorem 2).
    /// The default, and the only engine that records BFS-tree parents.
    #[default]
    Serial,
    /// Frontier-parallel Algorithm 1 (`egraph-core::par_bfs`): each BFS
    /// level wide enough to pay for scheduling (see
    /// [`Search::parallel_threshold`]) is chunked across the thread pool
    /// (dynamically self-scheduled chunks, so uneven levels balance), with
    /// per-worker next-frontier buffers spliced once per level. Results are
    /// bit-for-bit identical to `Serial` at every pool size (pinned by
    /// `tests/parallel_determinism.rs`).
    Parallel,
    /// Algorithm 2 (`egraph-matrix::algebraic_bfs`): BFS as power iteration
    /// of the transposed block adjacency matrix of Section III-C.
    Algebraic,
    /// The earliest-arrival sweep (`egraph-core::foremost`): a time-ordered
    /// pass in `O(|Ẽ| + N·n)` that never expands the temporal-node product
    /// space. The result carries arrival snapshots, not hop distances;
    /// composed with `Backward` direction or [`Search::reverse`], the sweep
    /// runs on the reversed view and reports *latest departures*.
    Foremost,
    /// Shared-frontier multi-source BFS (`egraph-core::par_bfs::
    /// par_multi_source_shared`): one traversal seeded with every source,
    /// recording per temporal node the nearest source and its distance —
    /// `O(|E| + |V|)` total regardless of the number of sources, where the
    /// per-source strategies cost that *per source*. Levels above the
    /// parallel threshold expand across the thread pool; the packed
    /// `fetch_min` claim protocol keeps the result — distances *and*
    /// smallest-index tie-breaks — bit-for-bit equal to the serial
    /// `multi_source_shared` engine at every pool size. The result carries
    /// a single nearest-source map instead of per-source maps.
    SharedFrontier,
}

/// A snapshot-range restriction, produced from the range expressions accepted
/// by [`Search::window`]. Bounds are in the *original* graph's snapshot
/// indices and inclusive once resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WindowSpec {
    start: Option<u32>,
    end_inclusive: Option<u32>,
    empty: bool,
}

impl WindowSpec {
    /// The whole graph (no restriction).
    pub fn full() -> Self {
        WindowSpec {
            start: None,
            end_inclusive: None,
            empty: false,
        }
    }

    pub(crate) fn new(start: Option<u32>, end_inclusive: Option<u32>) -> Self {
        // Canonicalise: a start bound of 0 restricts nothing, so `0..x` and
        // `..x` (and `0..` and `..`) are the *same* window and must compare,
        // hash and cache identically. End bounds cannot be canonicalised
        // without a graph (`..=last` equals `..` only for one length).
        let start = start.filter(|&s| s != 0);
        let empty = matches!((start, end_inclusive), (Some(s), Some(e)) if e < s);
        WindowSpec {
            start,
            end_inclusive,
            empty,
        }
    }

    pub(crate) fn empty() -> Self {
        WindowSpec {
            start: None,
            end_inclusive: None,
            empty: true,
        }
    }

    /// Reassembles a spec from its serialized parts (the wire codec's
    /// deserialization path), refusing non-canonical combinations so a
    /// decoded spec always equals — compares, hashes, caches as — the spec
    /// the builder would have produced: a start of `0` must have
    /// canonicalised away, and the `empty` bit must be either derived
    /// (`end < start`) or the bare statically-empty marker.
    pub(crate) fn from_parts(
        start: Option<u32>,
        end_inclusive: Option<u32>,
        empty: bool,
    ) -> Option<Self> {
        if start == Some(0) {
            return None;
        }
        let derived = matches!((start, end_inclusive), (Some(s), Some(e)) if e < s);
        let bare_empty_marker = empty && start.is_none() && end_inclusive.is_none();
        if empty != derived && !bare_empty_marker {
            return None;
        }
        Some(WindowSpec {
            start,
            end_inclusive,
            empty,
        })
    }

    /// The inclusive start bound, if one was given.
    pub fn start_bound(&self) -> Option<u32> {
        self.start
    }

    /// The inclusive end bound, if one was given. A spec without an end
    /// bound keeps covering snapshots appended after the query was built —
    /// the property the incremental re-search layer keys on.
    pub fn end_bound(&self) -> Option<u32> {
        self.end_inclusive
    }

    /// Whether the spec was built from a statically empty range (e.g.
    /// `3..3`) and will always resolve to [`GraphError::EmptyWindow`].
    pub fn is_empty_spec(&self) -> bool {
        self.empty
    }

    /// Resolves the spec against a graph with `num_timestamps` snapshots,
    /// returning inclusive `(start, end)` indices.
    fn resolve(&self, num_timestamps: usize) -> Result<(usize, usize)> {
        if num_timestamps == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if self.empty {
            return Err(GraphError::EmptyWindow);
        }
        let start = self.start.unwrap_or(0) as usize;
        let end = self
            .end_inclusive
            .map(|e| e as usize)
            .unwrap_or(num_timestamps - 1);
        if end >= num_timestamps {
            return Err(GraphError::TimeOutOfRange {
                time: TimeIndex::from_index(end),
                num_timestamps,
            });
        }
        if start > end {
            return Err(GraphError::EmptyWindow);
        }
        Ok((start, end))
    }
}

macro_rules! impl_window_from_ranges {
    ($t:ty, $get:expr) => {
        impl From<core::ops::Range<$t>> for WindowSpec {
            fn from(r: core::ops::Range<$t>) -> Self {
                let (start, end) = ($get(r.start), $get(r.end));
                match end.checked_sub(1) {
                    Some(e) => WindowSpec::new(Some(start), Some(e)),
                    None => WindowSpec::empty(),
                }
            }
        }
        impl From<core::ops::RangeInclusive<$t>> for WindowSpec {
            fn from(r: core::ops::RangeInclusive<$t>) -> Self {
                WindowSpec::new(Some($get(*r.start())), Some($get(*r.end())))
            }
        }
        impl From<core::ops::RangeFrom<$t>> for WindowSpec {
            fn from(r: core::ops::RangeFrom<$t>) -> Self {
                WindowSpec::new(Some($get(r.start)), None)
            }
        }
        impl From<core::ops::RangeTo<$t>> for WindowSpec {
            fn from(r: core::ops::RangeTo<$t>) -> Self {
                match $get(r.end).checked_sub(1) {
                    Some(e) => WindowSpec::new(None, Some(e)),
                    None => WindowSpec::empty(),
                }
            }
        }
        impl From<core::ops::RangeToInclusive<$t>> for WindowSpec {
            fn from(r: core::ops::RangeToInclusive<$t>) -> Self {
                WindowSpec::new(None, Some($get(r.end)))
            }
        }
    };
}

impl_window_from_ranges!(TimeIndex, |t: TimeIndex| t.0);
impl_window_from_ranges!(u32, |t: u32| t);

impl From<core::ops::RangeFull> for WindowSpec {
    fn from(_: core::ops::RangeFull) -> Self {
        WindowSpec::full()
    }
}

/// A fluent description of an evolving-graph search.
///
/// A `Search` is built from one or more source temporal nodes, optionally
/// refined with a [`Direction`], a [`Strategy`], a time [window](Search::window)
/// and/or [time reversal](Search::reverse), and then executed against any
/// [`EvolvingGraph`] with [`Search::run`]. Sources and results are always in
/// the coordinates of the graph handed to `run`, regardless of the views the
/// builder composes internally.
///
/// See the [crate-level documentation](crate) for the correspondence with the
/// legacy free functions.
#[derive(Clone, Debug)]
pub struct Search {
    sources: Vec<TemporalNode>,
    direction: Direction,
    strategy: Strategy,
    window: WindowSpec,
    reversed: bool,
    with_parents: bool,
    parallel_threshold: Option<usize>,
}

impl Search {
    /// Starts a single-source search from `source`.
    #[allow(clippy::should_implement_trait)] // deliberate fluent entry point
    pub fn from(source: impl Into<TemporalNode>) -> Self {
        Search {
            sources: vec![source.into()],
            direction: Direction::Forward,
            strategy: Strategy::Serial,
            window: WindowSpec::full(),
            reversed: false,
            with_parents: false,
            parallel_threshold: None,
        }
    }

    /// Starts a multi-source search (the citation-mining access pattern of
    /// Section V). The hop-distance strategies run one independent traversal
    /// per source and the [`SearchResult`] exposes both per-source maps and
    /// union views; [`Strategy::SharedFrontier`] instead runs a single
    /// traversal seeded with every source and records nearest-source
    /// distances.
    pub fn from_sources<I, T>(sources: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: Into<TemporalNode>,
    {
        Search {
            sources: sources.into_iter().map(Into::into).collect(),
            direction: Direction::Forward,
            strategy: Strategy::Serial,
            window: WindowSpec::full(),
            reversed: false,
            with_parents: false,
            parallel_threshold: None,
        }
    }

    /// Sets the traversal direction. [`Direction::Backward`] follows reversed
    /// static edges and causal edges to *earlier* snapshots, computing the
    /// influencer set `T⁻¹(a, t)` of Section V.
    pub fn direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Shorthand for [`Search::direction`]`(Direction::Backward)`.
    pub fn backward(self) -> Self {
        self.direction(Direction::Backward)
    }

    /// Selects the execution engine. Defaults to [`Strategy::Serial`].
    ///
    /// If [`Search::with_parents`] is requested, the serial engine is used
    /// regardless, because it is the only one that records BFS-tree parents;
    /// distances are identical either way (Theorem 4).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Restricts the traversal to a contiguous snapshot range, given as any
    /// standard range expression over [`TimeIndex`] or raw `u32` snapshot
    /// indices — `t0..t1`, `t0..=t1`, `t0..`, `..t1`, `..` — in the
    /// coordinates of the graph handed to [`Search::run`]. This folds the
    /// `TimeWindowView` composition of Section II-C into the builder.
    pub fn window(mut self, window: impl Into<WindowSpec>) -> Self {
        self.window = window.into();
        self
    }

    /// Runs the query on the time-reversed graph (the `t → −t`
    /// transformation of Section V), composing with [`Search::window`] and
    /// [`Search::direction`]. A reversed forward search equals a backward
    /// search on the original graph, and vice versa; sources and results stay
    /// in the original coordinates.
    pub fn reverse(mut self) -> Self {
        self.reversed = !self.reversed;
        self
    }

    /// Sets the frontier width at which the parallel engines
    /// ([`Strategy::Parallel`], [`Strategy::SharedFrontier`]) start
    /// expanding a BFS level across the thread pool; narrower levels run
    /// serially because scheduling costs more than it saves. `0` forces
    /// every level onto the pool, `usize::MAX` forces the whole traversal
    /// serial. Defaults to `egraph_core::par_bfs::default_parallel_threshold`
    /// (the `EGRAPH_PAR_THRESHOLD` environment variable, or 256 — re-tuned
    /// against the real pool in the `parallel_bfs` bench).
    ///
    /// The threshold changes only the execution profile, never the answer,
    /// so it is deliberately **not** part of [`Search::descriptor`]: cached
    /// results are shared across threshold settings.
    pub fn parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = Some(threshold);
        self
    }

    /// Records BFS-tree parents so shortest temporal paths can be
    /// reconstructed with [`SearchResult::path_to`]. Forces the serial
    /// engine (see [`Search::strategy`]).
    pub fn with_parents(mut self) -> Self {
        self.with_parents = true;
        self
    }

    /// The configured sources.
    pub fn sources(&self) -> &[TemporalNode] {
        &self.sources
    }

    /// Whether the traversal executes on time-reversed coordinates: a
    /// backward traversal is a forward traversal on the time-reversed
    /// graph, and composing with an explicit [`Search::reverse`] toggles
    /// once more. The single source of truth for [`Search::run`],
    /// [`Search::run_prepared`] and [`Search::descriptor`] alike — the
    /// cache key must never desynchronise from actual execution.
    fn effective_reverse(&self) -> bool {
        self.reversed ^ (self.direction == Direction::Backward)
    }

    /// The canonical identity of this query — root(s) × strategy ×
    /// direction × window × reverse, with the builder's dispatch rules
    /// applied (`with_parents` forces the serial engine; backward direction
    /// and explicit reversal collapse into one *effective reverse* bit).
    /// Caching layers key memoised results on this.
    pub fn descriptor(&self) -> QueryDescriptor {
        let strategy = if self.with_parents {
            Strategy::Serial
        } else {
            self.strategy
        };
        QueryDescriptor::new(
            self.sources.clone(),
            strategy,
            self.effective_reverse(),
            self.window,
            self.with_parents,
        )
    }

    /// Routes this search through an alternative execution back end — a
    /// [`QueryExecutor`] such as `egraph-stream`'s cached live-graph
    /// session — instead of traversing a graph directly. Equivalent to
    /// `exec.run_search(self)`; provided so call sites keep the fluent
    /// shape: `Search::from(root).run_via(&mut session)`.
    pub fn run_via<E: QueryExecutor + ?Sized>(&self, exec: &mut E) -> Result<Arc<SearchResult>> {
        exec.run_search(self)
    }

    /// Executes the search against `graph`.
    ///
    /// The result arrives behind an [`Arc`] so execution layers that share
    /// results (the `egraph-stream` query cache serves hits as `O(1)` `Arc`
    /// clones of one materialisation) and direct callers go through one
    /// signature; a fresh run is the sole owner, so
    /// [`Arc::unwrap_or_clone`] recovers an owned [`SearchResult`] for free.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NoSources`] if the builder holds no source;
    /// * [`GraphError::EmptyGraph`] / [`GraphError::EmptyWindow`] /
    ///   [`GraphError::TimeOutOfRange`] for degenerate windows;
    /// * [`GraphError::OutsideWindow`] if a source's snapshot lies outside
    ///   the window;
    /// * the engine's own validation errors ([`GraphError::InactiveRoot`],
    ///   [`GraphError::NodeOutOfRange`], …) for invalid sources.
    pub fn run<G: EvolvingGraph + Sync>(&self, graph: &G) -> Result<Arc<SearchResult>> {
        self.run_owned(graph).map(Arc::new)
    }

    /// [`Search::run`] before the [`Arc`] wrap — the single execution path
    /// both entry points share.
    fn run_owned<G: EvolvingGraph + Sync>(&self, graph: &G) -> Result<SearchResult> {
        if self.sources.is_empty() {
            return Err(GraphError::NoSources);
        }
        let num_timestamps = graph.num_timestamps();
        let (start, end) = self.window.resolve(num_timestamps)?;
        let effective_reverse = self.effective_reverse();
        let map = ViewMap {
            window_start: start,
            view_len: end - start + 1,
            reversed: effective_reverse,
        };
        let windowed = start != 0 || end != num_timestamps - 1;
        match (windowed, effective_reverse) {
            (false, false) => self.run_on(graph, map, num_timestamps),
            (true, false) => {
                let view = TimeWindowView::new(
                    graph,
                    TimeIndex::from_index(start),
                    TimeIndex::from_index(end),
                )?;
                self.run_on(&view, map, num_timestamps)
            }
            (false, true) => self.run_on(&ReversedView::new(graph), map, num_timestamps),
            (true, true) => {
                let view = TimeWindowView::new(
                    graph,
                    TimeIndex::from_index(start),
                    TimeIndex::from_index(end),
                )?;
                self.run_on(&ReversedView::new(view), map, num_timestamps)
            }
        }
    }

    /// Executes the search against a [`Prepared`](crate::prepared::Prepared)
    /// graph, reusing its prebuilt engine structures where the query shape
    /// allows.
    ///
    /// Today that covers full-graph, forward, parent-less
    /// [`Strategy::Algebraic`] queries, which skip the per-run
    /// [`BlockAdjacency`](egraph_matrix::block::BlockAdjacency) assembly;
    /// every other shape silently falls back to [`Search::run`] on the
    /// underlying graph. Answers and errors are identical to [`Search::run`]
    /// in all cases.
    pub fn run_prepared<G: EvolvingGraph + Sync>(
        &self,
        prepared: &crate::prepared::Prepared<'_, G>,
    ) -> Result<Arc<SearchResult>> {
        let graph = prepared.graph();
        if self.strategy != Strategy::Algebraic || self.with_parents || self.sources.is_empty() {
            return self.run(graph);
        }
        let num_timestamps = graph.num_timestamps();
        // Delegate every resolution error to the ordinary path so the two
        // entry points cannot drift on error cases.
        let Ok((start, end)) = self.window.resolve(num_timestamps) else {
            return self.run(graph);
        };
        if self.effective_reverse() || start != 0 || end + 1 != num_timestamps {
            return self.run(graph);
        }
        let map = ViewMap {
            window_start: 0,
            view_len: num_timestamps,
            reversed: false,
        };
        let mut maps = Vec::with_capacity(self.sources.len());
        for &source in &self.sources {
            let view_source = self.source_to_view(source, map)?;
            // `algebraic_bfs` = root validation + block assembly + blocked
            // power iteration; only the assembly is skipped here.
            check_root(graph, view_source)?;
            maps.push(egraph_matrix::algebraic_bfs::algebraic_bfs_blocked(
                prepared.blocks(),
                view_source,
            ));
        }
        Ok(Arc::new(SearchResult::from_maps(maps, false)))
    }

    /// Maps `source` into the view's coordinates, or reports it outside the
    /// window.
    fn source_to_view(&self, source: TemporalNode, map: ViewMap) -> Result<TemporalNode> {
        map.node_to_view(source).ok_or(GraphError::OutsideWindow {
            time: source.time,
            start: TimeIndex::from_index(map.window_start),
            end: TimeIndex::from_index(map.window_start + map.view_len - 1),
        })
    }

    /// Runs the configured engine on the composed `view` and maps results
    /// back into original coordinates.
    fn run_on<V: EvolvingGraph + Sync>(
        &self,
        view: &V,
        map: ViewMap,
        original_timestamps: usize,
    ) -> Result<SearchResult> {
        let strategy = if self.with_parents {
            // Parents require the serial hop engine (see `with_parents`).
            Strategy::Serial
        } else {
            self.strategy
        };
        match strategy {
            Strategy::Foremost => self.run_foremost_on(view, map),
            Strategy::SharedFrontier => self.run_shared_on(view, map, original_timestamps),
            _ => self.run_hops_on(view, map, original_timestamps, strategy),
        }
    }

    /// The per-source hop-distance path (`Serial` / `Parallel` /
    /// `Algebraic`): one traversal per source.
    fn run_hops_on<V: EvolvingGraph + Sync>(
        &self,
        view: &V,
        map: ViewMap,
        original_timestamps: usize,
        strategy: Strategy,
    ) -> Result<SearchResult> {
        let num_nodes = view.num_nodes();
        let identity =
            map.window_start == 0 && !map.reversed && map.view_len == original_timestamps;

        let mut maps = Vec::with_capacity(self.sources.len());
        for &source in &self.sources {
            let view_source = self.source_to_view(source, map)?;
            let view_result = match strategy {
                Strategy::Serial => {
                    if self.with_parents {
                        bfs_with_parents(view, view_source)?
                    } else {
                        bfs(view, view_source)?
                    }
                }
                Strategy::Parallel => par_bfs_with_threshold(
                    view,
                    view_source,
                    self.parallel_threshold
                        .unwrap_or_else(default_parallel_threshold),
                )?,
                Strategy::Algebraic => algebraic_bfs(view, view_source)?,
                Strategy::Foremost | Strategy::SharedFrontier => {
                    unreachable!("dispatched in run_on")
                }
            };
            maps.push(if identity {
                view_result
            } else if self.with_parents {
                let entries: Vec<(TemporalNode, u32, Option<TemporalNode>)> = view_result
                    .reached()
                    .into_iter()
                    .map(|(tn, d)| {
                        let parent = view_result.parent(tn).map(|p| map.node_to_original(p));
                        (map.node_to_original(tn), d, parent)
                    })
                    .collect();
                egraph_core::distance::DistanceMap::from_reached_with_parents(
                    num_nodes,
                    original_timestamps,
                    source,
                    &entries,
                )
            } else {
                let entries: Vec<(TemporalNode, u32)> = view_result
                    .reached()
                    .into_iter()
                    .map(|(tn, d)| (map.node_to_original(tn), d))
                    .collect();
                egraph_core::distance::DistanceMap::from_reached(
                    num_nodes,
                    original_timestamps,
                    source,
                    &entries,
                )
            });
        }
        Ok(SearchResult::from_maps(maps, map.reversed))
    }

    /// The arrival-only path (`Strategy::Foremost`): one time-ordered sweep
    /// per source, `O(|Ẽ| + N·n)` each, with arrivals re-expressed in
    /// original snapshot indices. On a reversed view the sweep's "earliest
    /// arrival" is the original graph's *latest departure*.
    fn run_foremost_on<V: EvolvingGraph + Sync>(
        &self,
        view: &V,
        map: ViewMap,
    ) -> Result<SearchResult> {
        let num_nodes = view.num_nodes();
        let mut tables = Vec::with_capacity(self.sources.len());
        for &source in &self.sources {
            let view_source = self.source_to_view(source, map)?;
            // The sweep itself tolerates inactive roots; validate like every
            // other engine so strategies agree on errors too.
            check_root(view, view_source)?;
            let swept = earliest_arrival(view, view_source);
            let arrivals: Vec<Option<TimeIndex>> = (0..num_nodes)
                .map(|v| {
                    swept
                        .arrival(NodeId::from_index(v))
                        .map(|t| map.time_to_original(t))
                })
                .collect();
            tables.push(ForemostResult::from_arrivals(source, arrivals));
        }
        Ok(SearchResult::from_arrivals(tables, map.reversed))
    }

    /// The shared-frontier path (`Strategy::SharedFrontier`): one traversal
    /// seeded with every source, nearest-source distances re-expressed in
    /// original coordinates.
    fn run_shared_on<V: EvolvingGraph + Sync>(
        &self,
        view: &V,
        map: ViewMap,
        original_timestamps: usize,
    ) -> Result<SearchResult> {
        let num_nodes = view.num_nodes();
        let identity =
            map.window_start == 0 && !map.reversed && map.view_len == original_timestamps;
        let view_sources = self
            .sources
            .iter()
            .map(|&s| self.source_to_view(s, map))
            .collect::<Result<Vec<TemporalNode>>>()?;
        // The parallel engine with threshold gating: wide levels go to the
        // pool, narrow ones run the serial loop inside the same engine. The
        // packed-key claim protocol makes the answer independent of both the
        // threshold and the pool size (differential suites pin it to the
        // serial `multi_source_shared`).
        let shared = par_multi_source_shared_with_threshold(
            view,
            &view_sources,
            self.parallel_threshold
                .unwrap_or_else(default_parallel_threshold),
        )?;
        let shared = if identity {
            shared
        } else {
            let entries: Vec<(TemporalNode, u32, usize)> = shared
                .reached_with_sources()
                .into_iter()
                .map(|(tn, d, s)| (map.node_to_original(tn), d, s))
                .collect();
            MultiSourceMap::from_entries(
                num_nodes,
                original_timestamps,
                self.sources.clone(),
                &entries,
            )
        };
        Ok(SearchResult::from_shared(shared, map.reversed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::bfs::backward_bfs;
    use egraph_core::examples::paper_figure1;

    #[test]
    fn default_search_matches_algorithm_1() {
        let g = paper_figure1();
        for &root in &g.active_nodes() {
            let legacy = bfs(&g, root).unwrap();
            let result = Search::from(root).run(&g).unwrap();
            assert_eq!(
                result.distance_map().as_flat_slice(),
                legacy.as_flat_slice()
            );
        }
    }

    #[test]
    fn strategies_agree_on_the_paper_example() {
        let g = paper_figure1();
        for &root in &g.active_nodes() {
            let serial = Search::from(root).run(&g).unwrap();
            for strategy in [Strategy::Parallel, Strategy::Algebraic] {
                let other = Search::from(root).strategy(strategy).run(&g).unwrap();
                assert_eq!(
                    serial.distance_map().as_flat_slice(),
                    other.distance_map().as_flat_slice(),
                    "strategy {strategy:?}, root {root:?}"
                );
            }
        }
    }

    #[test]
    fn backward_direction_matches_backward_bfs() {
        let g = paper_figure1();
        for &root in &g.active_nodes() {
            let legacy = backward_bfs(&g, root).unwrap();
            for strategy in [Strategy::Serial, Strategy::Parallel, Strategy::Algebraic] {
                let result = Search::from(root)
                    .direction(Direction::Backward)
                    .strategy(strategy)
                    .run(&g)
                    .unwrap();
                assert_eq!(
                    result.distance_map().as_flat_slice(),
                    legacy.as_flat_slice(),
                    "strategy {strategy:?}, root {root:?}"
                );
            }
        }
    }

    #[test]
    fn double_reversal_is_the_identity() {
        let g = paper_figure1();
        let root = TemporalNode::from_raw(0, 0);
        let forward = Search::from(root).run(&g).unwrap();
        let double = Search::from(root).backward().reverse().run(&g).unwrap();
        assert_eq!(
            forward.distance_map().as_flat_slice(),
            double.distance_map().as_flat_slice()
        );
    }

    #[test]
    fn window_expressions_resolve_consistently() {
        let g = paper_figure1();
        let root = TemporalNode::from_raw(0, 1);
        let half_open = Search::from(root).window(1u32..3).run(&g).unwrap();
        let inclusive = Search::from(root).window(1u32..=2).run(&g).unwrap();
        let suffix = Search::from(root).window(TimeIndex(1)..).run(&g).unwrap();
        assert_eq!(
            half_open.distance_map().as_flat_slice(),
            inclusive.distance_map().as_flat_slice()
        );
        assert_eq!(
            half_open.distance_map().as_flat_slice(),
            suffix.distance_map().as_flat_slice()
        );
    }

    #[test]
    fn suffix_window_reproduces_the_full_search() {
        // Section II-C: snapshots before the root are irrelevant.
        let g = paper_figure1();
        let root = TemporalNode::from_raw(0, 1);
        let full = Search::from(root).run(&g).unwrap();
        let windowed = Search::from(root).window(1u32..).run(&g).unwrap();
        assert_eq!(
            full.distance_map().as_flat_slice(),
            windowed.distance_map().as_flat_slice()
        );
    }

    #[test]
    fn windowed_results_stay_in_original_coordinates() {
        let g = paper_figure1();
        let root = TemporalNode::from_raw(0, 1);
        let windowed = Search::from(root).window(1u32..=2).run(&g).unwrap();
        // (3, t3) = (2, 2) in original coordinates must be reported as such.
        assert_eq!(windowed.distance(TemporalNode::from_raw(2, 2)), Some(2));
        assert_eq!(windowed.distance_map().num_timestamps(), 3);
    }

    #[test]
    fn sources_outside_the_window_are_rejected() {
        let g = paper_figure1();
        let err = Search::from(TemporalNode::from_raw(0, 0))
            .window(1u32..=2)
            .run(&g)
            .unwrap_err();
        assert!(matches!(err, GraphError::OutsideWindow { .. }), "{err:?}");
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // deliberately empty windows
    fn degenerate_windows_are_rejected() {
        let g = paper_figure1();
        let root = TemporalNode::from_raw(0, 0);
        assert!(matches!(
            Search::from(root).window(1u32..1).run(&g).unwrap_err(),
            GraphError::EmptyWindow
        ));
        assert!(matches!(
            Search::from(root).window(2u32..=1).run(&g).unwrap_err(),
            GraphError::EmptyWindow
        ));
        assert!(matches!(
            Search::from(root).window(0u32..=9).run(&g).unwrap_err(),
            GraphError::TimeOutOfRange { .. }
        ));
    }

    #[test]
    fn empty_source_lists_are_rejected() {
        let g = paper_figure1();
        let err = Search::from_sources(Vec::<TemporalNode>::new())
            .run(&g)
            .unwrap_err();
        assert!(matches!(err, GraphError::NoSources));
    }

    #[test]
    fn invalid_sources_propagate_engine_errors() {
        let g = paper_figure1();
        assert!(matches!(
            Search::from(TemporalNode::from_raw(2, 0))
                .run(&g)
                .unwrap_err(),
            GraphError::InactiveRoot { .. }
        ));
        assert!(matches!(
            Search::from(TemporalNode::from_raw(9, 0))
                .run(&g)
                .unwrap_err(),
            GraphError::NodeOutOfRange { .. }
        ));
    }

    #[test]
    fn with_parents_reconstructs_paths_through_views() {
        let g = paper_figure1();
        // Windowed + parents: path must be a valid temporal path in original
        // coordinates.
        let result = Search::from(TemporalNode::from_raw(0, 1))
            .window(1u32..=2)
            .with_parents()
            .strategy(Strategy::Algebraic) // ignored: parents force serial
            .run(&g)
            .unwrap();
        let path = result.path_to(TemporalNode::from_raw(2, 2)).unwrap();
        assert_eq!(path.first().copied(), Some(TemporalNode::from_raw(0, 1)));
        assert_eq!(path.last().copied(), Some(TemporalNode::from_raw(2, 2)));
        for w in path.windows(2) {
            assert!(w[0].time <= w[1].time, "path moves backward: {path:?}");
        }
    }

    #[test]
    fn multi_source_unions_per_source_results() {
        let g = paper_figure1();
        let a = TemporalNode::from_raw(0, 1);
        let b = TemporalNode::from_raw(1, 0);
        let multi = Search::from_sources([a, b]).run(&g).unwrap();
        assert_eq!(multi.distance_maps().len(), 2);
        let single_a = Search::from(a).run(&g).unwrap();
        let single_b = Search::from(b).run(&g).unwrap();
        for tn in g.active_nodes() {
            let expected = match (single_a.distance(tn), single_b.distance(tn)) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, y) => x.or(y),
            };
            assert_eq!(multi.distance(tn), expected, "at {tn:?}");
        }
    }
}
