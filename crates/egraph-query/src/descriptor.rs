//! [`QueryDescriptor`]: the canonical, hashable identity of a [`Search`].
//!
//! Differently phrased builders that would execute the *same traversal*
//! produce equal descriptors wherever that is decidable without a graph:
//! an explicit [`Search::reverse`] composed with
//! [`Direction::Backward`](egraph_core::bfs::Direction::Backward) collapses
//! into a single *effective reverse* bit (the builder executes both through
//! the same reversed view), and a window start bound of `0` canonicalises
//! away (`0..` ≡ `..`). The one graph-dependent phrasing stays distinct: an
//! explicit end bound that happens to equal the last snapshot (`..=last`)
//! is not unified with an unbounded end, because the two *diverge* the
//! moment a snapshot is appended. Caching layers (the `egraph-stream`
//! crate's `QueryCache`) key memoised results on this type instead of
//! re-deriving the builder's dispatch rules, so the cache composes with
//! every strategy rather than bypassing the builder.
//!
//! [`Search`]: crate::Search
//! [`Search::reverse`]: crate::Search::reverse

use egraph_core::ids::TemporalNode;

use crate::builder::{Strategy, WindowSpec};

/// The canonical identity of a search: root(s) × strategy × direction ×
/// window × reverse, after the builder's dispatch rules are applied.
///
/// Obtained from [`Search::descriptor`](crate::Search::descriptor).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryDescriptor {
    sources: Vec<TemporalNode>,
    strategy: Strategy,
    effective_reverse: bool,
    window: WindowSpec,
    with_parents: bool,
}

impl QueryDescriptor {
    pub(crate) fn new(
        sources: Vec<TemporalNode>,
        strategy: Strategy,
        effective_reverse: bool,
        window: WindowSpec,
        with_parents: bool,
    ) -> Self {
        QueryDescriptor {
            sources,
            strategy,
            effective_reverse,
            window,
            with_parents,
        }
    }

    /// The configured sources, in builder order (order is part of the
    /// identity: per-source payloads are returned in this order).
    pub fn sources(&self) -> &[TemporalNode] {
        &self.sources
    }

    /// The strategy that will actually execute — [`Strategy::Serial`] when
    /// the builder requested BFS-tree parents, regardless of the configured
    /// strategy (see [`Search::with_parents`](crate::Search::with_parents)).
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Whether the traversal runs on time-reversed coordinates: an explicit
    /// [`reverse`](crate::Search::reverse) XOR a backward
    /// [`direction`](crate::Search::direction).
    pub fn effective_reverse(&self) -> bool {
        self.effective_reverse
    }

    /// The snapshot-window restriction.
    pub fn window(&self) -> WindowSpec {
        self.window
    }

    /// Whether BFS-tree parents are recorded.
    pub fn with_parents(&self) -> bool {
        self.with_parents
    }

    /// Whether a cached result of this query can be *extended in place* when
    /// strictly later snapshots are appended to the graph — shorthand for
    /// `self.append_repair() == AppendRepair::Extend`. Every descriptor
    /// shape has *some* incremental repair (see [`AppendRepair`]); this
    /// predicate singles out the frontier-growing one.
    pub fn is_append_extendable(&self) -> bool {
        self.append_repair() == AppendRepair::Extend
    }

    /// Classifies how a cached result of this query is repaired when
    /// strictly later snapshots are appended to the graph — one row of the
    /// cache-invalidation matrix (ROADMAP / README).
    ///
    /// Appending a snapshot only ever adds causal edges *into* it and static
    /// edges *inside* it. That gives every shape a cheap repair:
    ///
    /// * **Forward, unbounded end** ([`AppendRepair::Extend`]): previously
    ///   computed distances / arrivals / frontier claims all survive; the
    ///   result merely gains coverage of the new snapshot —
    ///   [`ResumableBfs`](egraph_core::resume::ResumableBfs) /
    ///   [`ResumableForemost`](egraph_core::resume::ResumableForemost) /
    ///   [`ResumableShared`](egraph_core::resume::ResumableShared), parents
    ///   included.
    /// * **Bounded window end** ([`AppendRepair::Redimension`]): the window
    ///   never covers appended snapshots, so the answer is append-invariant
    ///   *modulo its time dimensions* — remap coordinates, touch no edges.
    /// * **Effective reversal** ([`AppendRepair::Resettle`]): a reversed
    ///   traversal from a fixed-time root only reaches times at or before
    ///   the root — strictly earlier than any appended snapshot — so the
    ///   prior value map is the *stable core* (Afarin et al.) and only an
    ///   unstable fringe drawn from the delta's touched nodes could need
    ///   re-settling;
    ///   [`StableCoreResettle`](egraph_core::resume::StableCoreResettle)
    ///   verifies that fringe is empty instead of assuming it.
    /// * **Empty window** ([`AppendRepair::None`]): the query always errors
    ///   and errors are never cached — nothing to repair.
    pub fn append_repair(&self) -> AppendRepair {
        if self.window.is_empty_spec() {
            AppendRepair::None
        } else if self.window.end_bound().is_some() {
            AppendRepair::Redimension
        } else if self.effective_reverse {
            AppendRepair::Resettle
        } else {
            AppendRepair::Extend
        }
    }

    /// Rebuilds an executable [`Search`](crate::Search) from this identity —
    /// the deserialization half of shipping queries over a wire: a server
    /// decodes a descriptor (see [`codec`](crate::codec)) and calls this to
    /// get something it can `run`. Round-trips:
    /// `descriptor.to_search().descriptor() == descriptor`.
    pub fn to_search(&self) -> crate::Search {
        let mut search = crate::Search::from_sources(self.sources.iter().copied())
            .strategy(self.strategy)
            .window(self.window);
        if self.effective_reverse {
            search = search.reverse();
        }
        if self.with_parents {
            search = search.with_parents();
        }
        search
    }

    /// Whether the hop engines serve this query (per-source
    /// [`DistanceMap`](egraph_core::distance::DistanceMap) payload).
    pub fn is_hop_query(&self) -> bool {
        matches!(
            self.strategy,
            Strategy::Serial | Strategy::Parallel | Strategy::Algebraic
        )
    }
}

/// How a cached result is repaired when snapshots are appended — the rows of
/// the cache-invalidation matrix. See
/// [`QueryDescriptor::append_repair`] for the classification rules and the
/// `egraph-stream` `QueryCache` for the implementations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AppendRepair {
    /// Grow the retained result append-only (resumable frontier extension).
    Extend,
    /// Remap the result's time dimensions; no graph work.
    Redimension,
    /// Reuse the stable core after verifying the unstable fringe is empty.
    Resettle,
    /// No repair applies (the query unconditionally errors; never cached).
    None,
}

/// An execution back end a [`Search`](crate::Search) can be routed through —
/// the inversion that lets caching / live layers sit *behind* the builder
/// instead of wrapping it. Implemented by `egraph-stream`'s
/// `CachedSession`; [`Search::run_via`](crate::Search::run_via) is the
/// entry point.
pub trait QueryExecutor {
    /// Executes `search`, by whatever mix of cache hits, incremental
    /// extension and recomputation the back end implements. Must be
    /// answer-equivalent to [`Search::run`](crate::Search::run) against the
    /// backing graph — errors included. The shared return is what makes a
    /// cache hit `O(1)`: serving an existing result is an `Arc` clone, not a
    /// re-materialisation.
    fn run_search(
        &mut self,
        search: &crate::Search,
    ) -> egraph_core::error::Result<std::sync::Arc<crate::SearchResult>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Search;
    use egraph_core::bfs::Direction;
    use egraph_core::ids::TemporalNode;

    fn root() -> TemporalNode {
        TemporalNode::from_raw(0, 0)
    }

    #[test]
    fn backward_and_reversed_collapse_to_the_same_descriptor() {
        let a = Search::from(root()).backward().descriptor();
        let b = Search::from(root()).reverse().descriptor();
        assert_eq!(a, b);
        assert!(a.effective_reverse());
        // ...and double reversal cancels.
        let c = Search::from(root())
            .direction(Direction::Backward)
            .reverse()
            .descriptor();
        assert!(!c.effective_reverse());
        assert_eq!(c, Search::from(root()).descriptor());
    }

    #[test]
    fn zero_start_windows_collapse_to_the_unwindowed_descriptor() {
        // `0..` restricts nothing: one standing query, one cache entry.
        assert_eq!(
            Search::from(root()).window(0u32..).descriptor(),
            Search::from(root()).descriptor()
        );
        assert_eq!(
            Search::from(root()).window(0u32..=3).descriptor(),
            Search::from(root()).window(..=3u32).descriptor()
        );
        // A bounded end stays distinct from an unbounded one — they diverge
        // as soon as a snapshot is appended.
        assert_ne!(
            Search::from(root()).window(..=3u32).descriptor(),
            Search::from(root()).descriptor()
        );
    }

    #[test]
    fn with_parents_forces_the_serial_strategy_in_the_descriptor() {
        let d = Search::from(root())
            .strategy(Strategy::Algebraic)
            .with_parents()
            .descriptor();
        assert_eq!(d.strategy(), Strategy::Serial);
        assert!(d.with_parents());
        assert_ne!(d, Search::from(root()).descriptor());
    }

    #[test]
    fn append_repair_matrix() {
        let r = |s: Search| s.descriptor().append_repair();
        // Forward unbounded-end queries extend — every engine, parents
        // included.
        assert_eq!(r(Search::from(root())), AppendRepair::Extend);
        assert_eq!(
            r(Search::from(root()).strategy(Strategy::Foremost)),
            AppendRepair::Extend
        );
        assert_eq!(r(Search::from(root()).window(1u32..)), AppendRepair::Extend);
        assert_eq!(r(Search::from(root()).with_parents()), AppendRepair::Extend);
        assert_eq!(
            r(Search::from(root()).strategy(Strategy::SharedFrontier)),
            AppendRepair::Extend
        );
        assert!(d_extendable(Search::from(root())));
        // Bounded window ends re-dimension — the window bound wins over
        // reversal (a bounded reversed result is still append-invariant
        // modulo dimensions).
        assert_eq!(
            r(Search::from(root()).window(0u32..=1)),
            AppendRepair::Redimension
        );
        assert_eq!(
            r(Search::from(root()).backward().window(..=1u32)),
            AppendRepair::Redimension
        );
        // Effective reversal (unbounded end) resettles the stable core.
        assert_eq!(r(Search::from(root()).backward()), AppendRepair::Resettle);
        assert_eq!(r(Search::from(root()).reverse()), AppendRepair::Resettle);
        assert!(!d_extendable(Search::from(root()).backward()));
        // Double reversal cancels back to extension.
        assert_eq!(
            r(Search::from(root()).backward().reverse()),
            AppendRepair::Extend
        );
        // Empty windows always error; nothing is ever cached to repair.
        #[allow(clippy::reversed_empty_ranges)]
        let empty = Search::from(root()).window(3u32..1);
        assert_eq!(r(empty), AppendRepair::None);
    }

    fn d_extendable(s: Search) -> bool {
        s.descriptor().is_append_extendable()
    }

    #[test]
    fn source_order_is_part_of_the_identity() {
        let a = TemporalNode::from_raw(0, 0);
        let b = TemporalNode::from_raw(1, 0);
        assert_ne!(
            Search::from_sources([a, b]).descriptor(),
            Search::from_sources([b, a]).descriptor()
        );
    }
}
