//! [`SearchResult`]: the uniform result type of every [`Search`](crate::Search).
//!
//! A result's payload depends on the executed [`Strategy`](crate::Strategy):
//!
//! * the hop-distance engines (`Serial`, `Parallel`, `Algebraic`) produce one
//!   [`DistanceMap`] per source;
//! * `Foremost` produces one arrival table ([`ForemostResult`]) per source —
//!   no hop distances exist in that payload;
//! * `SharedFrontier` produces a single [`MultiSourceMap`] holding, for each
//!   temporal node, the distance to (and identity of) the *nearest* source.
//!
//! All payloads are always expressed in the coordinates of the graph the
//! query ran against (window shifts and time reversal are undone by the
//! builder). Accessors that a payload cannot serve panic with a message
//! naming the strategies that can; the accessors shared by every payload
//! ([`SearchResult::arrival`], [`SearchResult::reaches_node`],
//! [`SearchResult::reached_node_ids`], [`SearchResult::sources`]) are the
//! ones the workspace's cross-strategy equivalence suites compare.
//!
//! Execution layers hand results out as `Arc<SearchResult>`
//! ([`Search::run`](crate::Search::run) and every
//! [`QueryExecutor`](crate::QueryExecutor)): serving the same result twice
//! is a reference-count bump, not an `O(nodes × snapshots)` deep copy. All
//! read accessors take `&self`, so they work unchanged through the `Arc`;
//! callers that need ownership of a payload use
//! [`Arc::unwrap_or_clone`](std::sync::Arc::unwrap_or_clone) (free on a
//! freshly computed result) before the `into_*` consumers.

use egraph_core::distance::{DistanceMap, MultiSourceMap};
use egraph_core::foremost::ForemostResult;
use egraph_core::ids::{NodeId, TemporalNode, TimeIndex};

use std::collections::BTreeMap;

/// Strategy-dependent payload of a search result.
#[derive(Clone, Debug)]
enum Payload {
    /// One hop-distance map per source (`Serial` / `Parallel` / `Algebraic`).
    Hops(Vec<DistanceMap>),
    /// One foremost arrival table per source (`Foremost`).
    Arrivals(Vec<ForemostResult>),
    /// A single nearest-source map (`SharedFrontier`).
    Shared(MultiSourceMap),
}

/// The result of executing a [`Search`](crate::Search).
#[derive(Clone, Debug)]
pub struct SearchResult {
    payload: Payload,
    /// Whether the executed traversal ran on time-reversed coordinates
    /// (`.reverse()` XOR `Direction::Backward`). Determines which end of the
    /// time axis [`SearchResult::arrival`] reports.
    reversed: bool,
}

impl SearchResult {
    /// Assembles a hop-payload result from per-source distance maps, as the
    /// hop engines would have produced for a traversal with the given
    /// time-reversal bit. Intended for execution layers (caches, incremental
    /// re-search) that rebuild results from resumed state; `maps` must be
    /// non-empty and in source order.
    pub fn from_maps(maps: Vec<DistanceMap>, reversed: bool) -> Self {
        debug_assert!(!maps.is_empty(), "SearchResult requires at least one map");
        SearchResult {
            payload: Payload::Hops(maps),
            reversed,
        }
    }

    /// Assembles a [`Foremost`](crate::Strategy::Foremost)-payload result
    /// from per-source arrival tables (non-empty, in source order). See
    /// [`SearchResult::from_maps`] for the intended callers.
    pub fn from_arrivals(arrivals: Vec<ForemostResult>, reversed: bool) -> Self {
        debug_assert!(!arrivals.is_empty());
        SearchResult {
            payload: Payload::Arrivals(arrivals),
            reversed,
        }
    }

    /// Assembles a [`SharedFrontier`](crate::Strategy::SharedFrontier)-payload
    /// result from a nearest-source map. See [`SearchResult::from_maps`] for
    /// the intended callers.
    pub fn from_shared(shared: MultiSourceMap, reversed: bool) -> Self {
        SearchResult {
            payload: Payload::Shared(shared),
            reversed,
        }
    }

    /// The hop-map payload, or a descriptive panic.
    #[track_caller]
    fn hop_maps(&self) -> &[DistanceMap] {
        match &self.payload {
            Payload::Hops(maps) => maps,
            Payload::Arrivals(_) => panic!(
                "this SearchResult was produced by Strategy::Foremost, which computes \
                 arrival times rather than hop distances; use arrival()/earliest_arrival()/\
                 latest_departure(), or re-run with a hop-distance strategy"
            ),
            Payload::Shared(_) => panic!(
                "this SearchResult was produced by Strategy::SharedFrontier, which keeps a \
                 single nearest-source map; per-source distance maps are only available from \
                 Strategy::{{Serial, Parallel, Algebraic}}"
            ),
        }
    }

    /// Whether the executed traversal ran on time-reversed coordinates
    /// (an explicit [`reverse`](crate::Search::reverse) XOR
    /// [`Direction::Backward`](egraph_core::bfs::Direction::Backward)).
    pub fn is_time_reversed(&self) -> bool {
        self.reversed
    }

    // ------------------------------------------------------------------
    // Per-source access
    // ------------------------------------------------------------------

    /// The sources of the search, in the order they were configured.
    pub fn sources(&self) -> Vec<TemporalNode> {
        match &self.payload {
            Payload::Hops(maps) => maps.iter().map(|m| m.root()).collect(),
            Payload::Arrivals(arrivals) => arrivals.iter().map(|a| a.root()).collect(),
            Payload::Shared(shared) => shared.sources().to_vec(),
        }
    }

    /// The first (for single-source searches: the only) source.
    pub fn source(&self) -> TemporalNode {
        match &self.payload {
            Payload::Hops(maps) => maps[0].root(),
            Payload::Arrivals(arrivals) => arrivals[0].root(),
            Payload::Shared(shared) => shared.sources()[0],
        }
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        match &self.payload {
            Payload::Hops(maps) => maps.len(),
            Payload::Arrivals(arrivals) => arrivals.len(),
            Payload::Shared(shared) => shared.num_sources(),
        }
    }

    /// The per-source distance maps, in source order.
    ///
    /// # Panics
    /// Panics for [`Foremost`](crate::Strategy::Foremost) and
    /// [`SharedFrontier`](crate::Strategy::SharedFrontier) results, which do
    /// not materialise per-source hop maps.
    pub fn distance_maps(&self) -> &[DistanceMap] {
        self.hop_maps()
    }

    /// The first source's distance map — the natural accessor for
    /// single-source searches.
    ///
    /// # Panics
    /// See [`SearchResult::distance_maps`].
    pub fn distance_map(&self) -> &DistanceMap {
        &self.hop_maps()[0]
    }

    /// Consumes the result, returning the first source's distance map.
    ///
    /// # Panics
    /// See [`SearchResult::distance_maps`].
    pub fn into_distance_map(self) -> DistanceMap {
        self.into_distance_maps()
            .into_iter()
            .next()
            .expect("at least one map")
    }

    /// Consumes the result, returning every per-source distance map.
    ///
    /// # Panics
    /// See [`SearchResult::distance_maps`].
    pub fn into_distance_maps(self) -> Vec<DistanceMap> {
        self.hop_maps();
        match self.payload {
            Payload::Hops(maps) => maps,
            _ => unreachable!("hop_maps() already panicked"),
        }
    }

    /// The nearest-source map of a
    /// [`SharedFrontier`](crate::Strategy::SharedFrontier) result, borrowed.
    /// The accessor of choice now results are shared behind
    /// [`Arc`](std::sync::Arc) — no ownership needed to read the map.
    ///
    /// # Panics
    /// Panics for every other strategy's result.
    pub fn shared_map(&self) -> &MultiSourceMap {
        match &self.payload {
            Payload::Shared(shared) => shared,
            _ => panic!(
                "shared_map requires a Strategy::SharedFrontier result; other \
                 strategies do not build a nearest-source map"
            ),
        }
    }

    /// Consumes a [`SharedFrontier`](crate::Strategy::SharedFrontier) result,
    /// returning the nearest-source map.
    ///
    /// # Panics
    /// Panics for every other strategy's result.
    pub fn into_shared_map(self) -> MultiSourceMap {
        match self.payload {
            Payload::Shared(shared) => shared,
            _ => panic!(
                "into_shared_map requires a Strategy::SharedFrontier result; other \
                 strategies do not build a nearest-source map"
            ),
        }
    }

    /// Distance from source number `index` to `tn`.
    ///
    /// # Panics
    /// See [`SearchResult::distance_maps`].
    pub fn distance_from(&self, index: usize, tn: TemporalNode) -> Option<u32> {
        self.hop_maps().get(index).and_then(|m| m.distance(tn))
    }

    // ------------------------------------------------------------------
    // Union views
    // ------------------------------------------------------------------

    /// Distance to `tn`: for single-source searches the source's distance;
    /// for multi-source searches the minimum over sources (which is exactly
    /// what a shared-frontier result stores).
    ///
    /// # Panics
    /// Panics for [`Foremost`](crate::Strategy::Foremost) results, which
    /// compute arrival snapshots rather than hop distances.
    pub fn distance(&self, tn: TemporalNode) -> Option<u32> {
        match &self.payload {
            Payload::Hops(maps) => maps.iter().filter_map(|m| m.distance(tn)).min(),
            Payload::Shared(shared) => shared.distance(tn),
            Payload::Arrivals(_) => {
                self.hop_maps();
                unreachable!()
            }
        }
    }

    /// Whether any source reaches `tn` (Definition 7 reachability).
    ///
    /// # Panics
    /// Panics for [`Foremost`](crate::Strategy::Foremost) results, which only
    /// track node-level reachability — use [`SearchResult::reaches_node`].
    pub fn is_reached(&self, tn: TemporalNode) -> bool {
        match &self.payload {
            Payload::Hops(maps) => maps.iter().any(|m| m.is_reached(tn)),
            Payload::Shared(shared) => shared.is_reached(tn),
            Payload::Arrivals(_) => {
                self.hop_maps();
                unreachable!()
            }
        }
    }

    /// Whether any source reaches node `v` at *some* snapshot — the
    /// node-level reachability every payload can answer.
    pub fn reaches_node(&self, v: NodeId) -> bool {
        match &self.payload {
            Payload::Hops(maps) => {
                if v.index() >= maps[0].num_nodes() {
                    return false;
                }
                let num_timestamps = maps[0].num_timestamps();
                (0..num_timestamps)
                    .map(TimeIndex::from_index)
                    .any(|t| maps.iter().any(|m| m.is_reached(TemporalNode::new(v, t))))
            }
            Payload::Arrivals(arrivals) => arrivals.iter().any(|a| a.arrival(v).is_some()),
            Payload::Shared(shared) => {
                if v.index() >= shared.num_nodes() {
                    return false;
                }
                let num_timestamps = shared.num_timestamps();
                (0..num_timestamps)
                    .map(TimeIndex::from_index)
                    .any(|t| shared.is_reached(TemporalNode::new(v, t)))
            }
        }
    }

    /// All reached temporal nodes with their (minimum) distances, in
    /// time-major order. For a single source this equals
    /// `DistanceMap::reached`.
    ///
    /// # Panics
    /// Panics for [`Foremost`](crate::Strategy::Foremost) results.
    pub fn reached(&self) -> Vec<(TemporalNode, u32)> {
        match &self.payload {
            Payload::Shared(shared) => shared.reached(),
            _ => {
                let maps = self.hop_maps();
                if maps.len() == 1 {
                    return maps[0].reached();
                }
                let num_nodes = maps[0].num_nodes();
                let mut best: BTreeMap<usize, u32> = BTreeMap::new();
                for map in maps {
                    for (tn, d) in map.reached() {
                        best.entry(tn.flat_index(num_nodes))
                            .and_modify(|x| *x = (*x).min(d))
                            .or_insert(d);
                    }
                }
                best.into_iter()
                    .map(|(flat, d)| (TemporalNode::from_flat_index(flat, num_nodes), d))
                    .collect()
            }
        }
    }

    /// Number of distinct temporal nodes reached by any source (sources
    /// included).
    ///
    /// # Panics
    /// Panics for [`Foremost`](crate::Strategy::Foremost) results.
    pub fn num_reached(&self) -> usize {
        match &self.payload {
            Payload::Shared(shared) => shared.num_reached(),
            _ => {
                let maps = self.hop_maps();
                if maps.len() == 1 {
                    return maps[0].num_reached();
                }
                self.reached().len()
            }
        }
    }

    /// The temporal nodes reachable from the sources, *excluding* the
    /// sources themselves — the return shape of the legacy `reachable_set`.
    ///
    /// # Panics
    /// Panics for [`Foremost`](crate::Strategy::Foremost) results.
    pub fn reachable_set(&self) -> Vec<TemporalNode> {
        let sources = self.sources();
        self.reached()
            .into_iter()
            .map(|(tn, _)| tn)
            .filter(|tn| !sources.contains(tn))
            .collect()
    }

    /// The largest finite distance. For hop payloads this is the temporal
    /// eccentricity of the source (multi-source: the maximum per-source
    /// eccentricity); for a shared-frontier payload it is the eccentricity of
    /// the source *set* (the largest nearest-source distance), which is never
    /// larger.
    ///
    /// # Panics
    /// Panics for [`Foremost`](crate::Strategy::Foremost) results.
    pub fn eccentricity(&self) -> u32 {
        match &self.payload {
            Payload::Shared(shared) => shared.max_distance(),
            _ => self
                .hop_maps()
                .iter()
                .map(|m| m.max_distance())
                .max()
                .unwrap_or(0),
        }
    }

    /// Alias for [`SearchResult::eccentricity`], mirroring
    /// `DistanceMap::max_distance`.
    ///
    /// # Panics
    /// Panics for [`Foremost`](crate::Strategy::Foremost) results.
    pub fn max_distance(&self) -> u32 {
        self.eccentricity()
    }

    /// The distinct *node* identifiers reached at any snapshot by any source
    /// — the influence set `T(a, t)` of Section V for a forward search.
    /// Available for every strategy's result.
    pub fn reached_node_ids(&self) -> Vec<NodeId> {
        match &self.payload {
            Payload::Hops(maps) => {
                if maps.len() == 1 {
                    return maps[0].reached_node_ids();
                }
                let num_nodes = maps[0].num_nodes();
                let mut seen = vec![false; num_nodes];
                for map in maps {
                    for node in map.reached_node_ids() {
                        seen[node.index()] = true;
                    }
                }
                collect_seen(&seen)
            }
            Payload::Arrivals(arrivals) => {
                let num_nodes = arrivals
                    .iter()
                    .map(|a| a.arrivals().len())
                    .max()
                    .unwrap_or(0);
                let mut seen = vec![false; num_nodes];
                for table in arrivals {
                    for (v, t) in table.arrivals().iter().enumerate() {
                        if t.is_some() {
                            seen[v] = true;
                        }
                    }
                }
                collect_seen(&seen)
            }
            Payload::Shared(shared) => shared.reached_node_ids(),
        }
    }

    // ------------------------------------------------------------------
    // Arrival / departure views
    // ------------------------------------------------------------------

    /// The arrival snapshot of `node` in *traversal* time order — the single
    /// accessor the strategy-equivalence suites compare across engines:
    ///
    /// * for forward-in-time executions this is the **earliest arrival**
    ///   (smallest original snapshot at which any source reaches `node`);
    /// * for time-reversed executions (`.reverse()` XOR `Backward`) it is the
    ///   **latest departure** (largest original snapshot from which `node`
    ///   reaches a source).
    ///
    /// Available for every strategy's result; `None` if `node` is unreached.
    pub fn arrival(&self, node: NodeId) -> Option<TimeIndex> {
        if self.reversed {
            self.latest_departure(node)
        } else {
            self.earliest_arrival(node)
        }
    }

    /// The earliest original snapshot at which `node` is reached by any
    /// source — the "foremost" arrival time for forward searches. `None` if
    /// unreached.
    ///
    /// For hop payloads this scans only `node`'s time row of each map
    /// (`O(sources · snapshots)`), so calling it per node stays linear
    /// overall; for a `Foremost` payload it is a stored lookup.
    ///
    /// # Panics
    /// Panics for a time-reversed [`Foremost`](crate::Strategy::Foremost)
    /// result, whose sweep observed latest departures only — use
    /// [`SearchResult::latest_departure`] (or [`SearchResult::arrival`]).
    pub fn earliest_arrival(&self, node: NodeId) -> Option<TimeIndex> {
        match &self.payload {
            Payload::Arrivals(arrivals) => {
                assert!(
                    !self.reversed,
                    "a time-reversed Strategy::Foremost sweep records latest departures, \
                     not earliest arrivals; use latest_departure() or arrival()"
                );
                arrivals.iter().filter_map(|a| a.arrival(node)).min()
            }
            _ => self.scan_time_row(node, false),
        }
    }

    /// The latest original snapshot at which `node` is reached by any source
    /// — for backward / time-reversed searches, the latest snapshot from
    /// which `node` can still reach a source ("latest departure"). `None` if
    /// unreached.
    ///
    /// # Panics
    /// Panics for a forward [`Foremost`](crate::Strategy::Foremost) result,
    /// whose sweep observed earliest arrivals only — use
    /// [`SearchResult::earliest_arrival`] (or [`SearchResult::arrival`]).
    pub fn latest_departure(&self, node: NodeId) -> Option<TimeIndex> {
        match &self.payload {
            Payload::Arrivals(arrivals) => {
                assert!(
                    self.reversed,
                    "a forward Strategy::Foremost sweep records earliest arrivals, not \
                     latest departures; use earliest_arrival() or arrival()"
                );
                arrivals.iter().filter_map(|a| a.arrival(node)).max()
            }
            _ => self.scan_time_row(node, true),
        }
    }

    /// Scans `node`'s time row of a hop or shared payload for the first
    /// (`rev = false`) or last (`rev = true`) reached snapshot.
    fn scan_time_row(&self, node: NodeId, rev: bool) -> Option<TimeIndex> {
        let (num_nodes, num_timestamps) = match &self.payload {
            Payload::Hops(maps) => (maps[0].num_nodes(), maps[0].num_timestamps()),
            Payload::Shared(shared) => (shared.num_nodes(), shared.num_timestamps()),
            Payload::Arrivals(_) => unreachable!("callers handle the arrival payload"),
        };
        if node.index() >= num_nodes {
            return None;
        }
        let reached_at = |t: TimeIndex| match &self.payload {
            Payload::Hops(maps) => maps
                .iter()
                .any(|m| m.is_reached(TemporalNode::new(node, t))),
            Payload::Shared(shared) => shared.is_reached(TemporalNode::new(node, t)),
            Payload::Arrivals(_) => unreachable!(),
        };
        let times = 0..num_timestamps;
        if rev {
            times
                .rev()
                .map(TimeIndex::from_index)
                .find(|&t| reached_at(t))
        } else {
            times.map(TimeIndex::from_index).find(|&t| reached_at(t))
        }
    }

    /// Earliest arrival snapshots for every reached node, keyed by node.
    ///
    /// # Panics
    /// Panics for a time-reversed [`Foremost`](crate::Strategy::Foremost)
    /// result (see [`SearchResult::earliest_arrival`]).
    pub fn arrival_times(&self) -> Vec<(NodeId, TimeIndex)> {
        match &self.payload {
            Payload::Hops(maps) => {
                if maps.len() == 1 {
                    return maps[0].earliest_reach_times();
                }
                let num_nodes = maps[0].num_nodes();
                let mut earliest: Vec<Option<TimeIndex>> = vec![None; num_nodes];
                for map in maps {
                    for (node, t) in map.earliest_reach_times() {
                        let slot = &mut earliest[node.index()];
                        if slot.map(|cur| t < cur).unwrap_or(true) {
                            *slot = Some(t);
                        }
                    }
                }
                collect_times(&earliest)
            }
            Payload::Arrivals(arrivals) => {
                assert!(
                    !self.reversed,
                    "a time-reversed Strategy::Foremost sweep records latest departures, \
                     not earliest arrivals; use arrival() per node"
                );
                let num_nodes = arrivals
                    .iter()
                    .map(|a| a.arrivals().len())
                    .max()
                    .unwrap_or(0);
                let mut earliest: Vec<Option<TimeIndex>> = vec![None; num_nodes];
                for table in arrivals {
                    for (v, &t) in table.arrivals().iter().enumerate() {
                        let Some(t) = t else { continue };
                        let slot = &mut earliest[v];
                        if slot.map(|cur| t < cur).unwrap_or(true) {
                            *slot = Some(t);
                        }
                    }
                }
                collect_times(&earliest)
            }
            Payload::Shared(shared) => {
                let num_nodes = shared.num_nodes();
                let mut earliest: Vec<Option<TimeIndex>> = vec![None; num_nodes];
                for (tn, _) in shared.reached() {
                    let slot = &mut earliest[tn.node.index()];
                    if slot.map(|cur| tn.time < cur).unwrap_or(true) {
                        *slot = Some(tn.time);
                    }
                }
                collect_times(&earliest)
            }
        }
    }

    // ------------------------------------------------------------------
    // Nearest-source views
    // ------------------------------------------------------------------

    /// The nearest source of `tn` — the source at minimum distance, ties
    /// broken toward the smallest source index — together with that
    /// distance. Stored directly by a
    /// [`SharedFrontier`](crate::Strategy::SharedFrontier) result and derived
    /// from the per-source maps otherwise.
    ///
    /// # Panics
    /// Panics for [`Foremost`](crate::Strategy::Foremost) results.
    pub fn nearest_source(&self, tn: TemporalNode) -> Option<(TemporalNode, u32)> {
        match &self.payload {
            Payload::Shared(shared) => shared.nearest_source(tn),
            _ => {
                let maps = self.hop_maps();
                maps.iter()
                    .enumerate()
                    .filter_map(|(i, m)| m.distance(tn).map(|d| (d, i)))
                    .min()
                    .map(|(d, i)| (maps[i].root(), d))
            }
        }
    }

    /// Index (into [`SearchResult::sources`]) of the nearest source of `tn`:
    /// the smallest index among the sources at minimum distance.
    ///
    /// # Panics
    /// Panics for [`Foremost`](crate::Strategy::Foremost) results.
    pub fn nearest_source_index(&self, tn: TemporalNode) -> Option<usize> {
        match &self.payload {
            Payload::Shared(shared) => shared.nearest_source_index(tn),
            _ => self
                .hop_maps()
                .iter()
                .enumerate()
                .filter_map(|(i, m)| m.distance(tn).map(|d| (d, i)))
                .min()
                .map(|(_, i)| i),
        }
    }

    // ------------------------------------------------------------------
    // Paths and histograms
    // ------------------------------------------------------------------

    /// Reconstructs a shortest temporal path to `tn` from the source that
    /// reaches it at minimum distance. Requires the search to have been built
    /// with [`Search::with_parents`](crate::Search::with_parents); returns
    /// `None` otherwise or if `tn` is unreached.
    ///
    /// # Panics
    /// Panics for [`Foremost`](crate::Strategy::Foremost) and
    /// [`SharedFrontier`](crate::Strategy::SharedFrontier) results (but note
    /// `with_parents` forces the serial hop engine, so results of queries
    /// built with it always support this).
    pub fn path_to(&self, tn: TemporalNode) -> Option<Vec<TemporalNode>> {
        self.hop_maps()
            .iter()
            .filter(|m| m.is_reached(tn))
            .min_by_key(|m| m.distance(tn).unwrap_or(u32::MAX))
            .and_then(|m| m.path_to(tn))
    }

    /// Histogram of (minimum) distances: entry `k` counts temporal nodes at
    /// distance `k`. Entry 0 counts the sources.
    ///
    /// # Panics
    /// Panics for [`Foremost`](crate::Strategy::Foremost) results.
    pub fn distance_histogram(&self) -> Vec<usize> {
        match &self.payload {
            Payload::Hops(maps) if maps.len() == 1 => maps[0].distance_histogram(),
            Payload::Arrivals(_) => {
                self.hop_maps();
                unreachable!()
            }
            _ => {
                let reached = self.reached();
                let depth = reached.iter().map(|&(_, d)| d).max().unwrap_or(0);
                let mut hist = vec![0usize; depth as usize + 1];
                for (_, d) in reached {
                    hist[d as usize] += 1;
                }
                hist
            }
        }
    }

    /// The per-source distance maps if this is a hop-payload result, `None`
    /// otherwise — the non-panicking probe serialization layers dispatch on
    /// (exactly one of the three `try_*` accessors returns `Some`).
    pub fn try_distance_maps(&self) -> Option<&[DistanceMap]> {
        match &self.payload {
            Payload::Hops(maps) => Some(maps),
            _ => None,
        }
    }

    /// The per-source arrival tables if this is a
    /// [`Foremost`](crate::Strategy::Foremost) result, `None` otherwise.
    pub fn try_foremost_results(&self) -> Option<&[ForemostResult]> {
        match &self.payload {
            Payload::Arrivals(arrivals) => Some(arrivals),
            _ => None,
        }
    }

    /// The nearest-source map if this is a
    /// [`SharedFrontier`](crate::Strategy::SharedFrontier) result, `None`
    /// otherwise.
    pub fn try_shared_map(&self) -> Option<&MultiSourceMap> {
        match &self.payload {
            Payload::Shared(shared) => Some(shared),
            _ => None,
        }
    }

    /// The per-source arrival tables of a
    /// [`Foremost`](crate::Strategy::Foremost) result, in source order.
    ///
    /// # Panics
    /// Panics for every other strategy's result.
    pub fn foremost_results(&self) -> &[ForemostResult] {
        match &self.payload {
            Payload::Arrivals(arrivals) => arrivals,
            _ => panic!(
                "foremost_results requires a Strategy::Foremost result; hop-distance \
                 strategies derive arrivals on demand via earliest_arrival()"
            ),
        }
    }
}

/// Collects the set bits of `seen` into node identifiers.
fn collect_seen(seen: &[bool]) -> Vec<NodeId> {
    seen.iter()
        .enumerate()
        .filter(|&(_, &s)| s)
        .map(|(v, _)| NodeId::from_index(v))
        .collect()
}

/// Collects per-node optional times into `(node, time)` pairs.
fn collect_times(times: &[Option<TimeIndex>]) -> Vec<(NodeId, TimeIndex)> {
    times
        .iter()
        .enumerate()
        .filter_map(|(v, t)| t.map(|t| (NodeId::from_index(v), t)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Search, Strategy};
    use egraph_core::examples::paper_figure1;
    use egraph_core::foremost::earliest_arrival;
    use egraph_core::graph::EvolvingGraph as _;
    use egraph_core::metrics::eccentricity;

    #[test]
    fn single_source_accessors_match_distance_map() {
        let g = paper_figure1();
        let root = TemporalNode::from_raw(0, 0);
        let result = Search::from(root).run(&g).unwrap();
        let map = result.distance_map().clone();
        assert_eq!(result.source(), root);
        assert_eq!(result.num_sources(), 1);
        assert_eq!(result.num_reached(), map.num_reached());
        assert_eq!(result.reached(), map.reached());
        assert_eq!(result.reached_node_ids(), map.reached_node_ids());
        assert_eq!(result.arrival_times(), map.earliest_reach_times());
        assert_eq!(result.distance_histogram(), map.distance_histogram());
        assert_eq!(result.max_distance(), map.max_distance());
        assert!(!result.is_time_reversed());
    }

    #[test]
    fn eccentricity_matches_the_legacy_metric() {
        let g = paper_figure1();
        for &root in &g.active_nodes() {
            let result = Search::from(root).run(&g).unwrap();
            assert_eq!(Some(result.eccentricity()), eccentricity(&g, root));
        }
    }

    #[test]
    fn earliest_arrival_matches_the_foremost_sweep() {
        let g = paper_figure1();
        for &root in &g.active_nodes() {
            let result = Search::from(root).run(&g).unwrap();
            let foremost = earliest_arrival(&g, root);
            for v in 0..3u32 {
                assert_eq!(
                    result.earliest_arrival(NodeId(v)),
                    foremost.arrival(NodeId(v)),
                    "root {root:?}, node {v}"
                );
                assert_eq!(
                    result.arrival(NodeId(v)),
                    foremost.arrival(NodeId(v)),
                    "root {root:?}, node {v}"
                );
            }
        }
    }

    #[test]
    fn latest_departure_scans_from_the_far_end() {
        let g = paper_figure1();
        let root = TemporalNode::from_raw(0, 0);
        let result = Search::from(root).run(&g).unwrap();
        // Node 0 (paper 1) is reached at t1 and t2 → latest is t2.
        assert_eq!(result.latest_departure(NodeId(0)), Some(TimeIndex(1)));
        assert_eq!(result.earliest_arrival(NodeId(0)), Some(TimeIndex(0)));
        // A backward run reports departures through arrival().
        let back = Search::from(TemporalNode::from_raw(2, 2))
            .backward()
            .run(&g)
            .unwrap();
        assert!(back.is_time_reversed());
        assert_eq!(back.arrival(NodeId(0)), back.latest_departure(NodeId(0)));
    }

    #[test]
    fn reachable_set_excludes_every_source() {
        let g = paper_figure1();
        let sources = [TemporalNode::from_raw(0, 0), TemporalNode::from_raw(0, 1)];
        let result = Search::from_sources(sources).run(&g).unwrap();
        let set = result.reachable_set();
        for s in sources {
            assert!(!set.contains(&s));
        }
        assert!(set.contains(&TemporalNode::from_raw(2, 2)));
    }

    #[test]
    fn union_counts_deduplicate() {
        let g = paper_figure1();
        let a = TemporalNode::from_raw(0, 0);
        let result = Search::from_sources([a, a]).run(&g).unwrap();
        // The same source twice reaches exactly what one copy reaches.
        let single = Search::from(a).run(&g).unwrap();
        assert_eq!(result.num_reached(), single.num_reached());
        assert_eq!(result.reached(), single.reached());
    }

    #[test]
    fn nearest_source_derives_from_hop_maps() {
        let g = paper_figure1();
        let a = TemporalNode::from_raw(0, 1);
        let b = TemporalNode::from_raw(1, 0);
        let result = Search::from_sources([a, b]).run(&g).unwrap();
        // Each source is its own nearest source at distance 0.
        assert_eq!(result.nearest_source(a), Some((a, 0)));
        assert_eq!(result.nearest_source(b), Some((b, 0)));
        assert_eq!(result.nearest_source_index(a), Some(0));
        assert_eq!(result.nearest_source_index(b), Some(1));
    }

    #[test]
    #[should_panic(expected = "Strategy::Foremost")]
    fn foremost_results_panic_on_hop_distance_accessors() {
        let g = paper_figure1();
        let result = Search::from(TemporalNode::from_raw(0, 0))
            .strategy(Strategy::Foremost)
            .run(&g)
            .unwrap();
        let _ = result.distance(TemporalNode::from_raw(2, 2));
    }

    #[test]
    #[should_panic(expected = "Strategy::SharedFrontier")]
    fn shared_results_panic_on_per_source_maps() {
        let g = paper_figure1();
        let result = Search::from(TemporalNode::from_raw(0, 0))
            .strategy(Strategy::SharedFrontier)
            .run(&g)
            .unwrap();
        let _ = result.distance_map();
    }

    #[test]
    fn reaches_node_agrees_across_payloads() {
        let g = paper_figure1();
        let root = TemporalNode::from_raw(0, 0);
        let hops = Search::from(root).run(&g).unwrap();
        let foremost = Search::from(root)
            .strategy(Strategy::Foremost)
            .run(&g)
            .unwrap();
        let shared = Search::from(root)
            .strategy(Strategy::SharedFrontier)
            .run(&g)
            .unwrap();
        // Including out-of-range identifiers, which alias into other nodes'
        // flat slots unless bounds-checked.
        for v in 0..g.num_nodes() + 3 {
            let v = NodeId::from_index(v);
            assert_eq!(hops.reaches_node(v), foremost.reaches_node(v), "{v:?}");
            assert_eq!(hops.reaches_node(v), shared.reaches_node(v), "{v:?}");
        }
        assert!(!hops.reaches_node(NodeId::from_index(g.num_nodes())));
    }
}
