//! [`SearchResult`]: the uniform result type of every [`Search`](crate::Search).
//!
//! A result holds one [`DistanceMap`] per source, always expressed in the
//! coordinates of the graph the query ran against (window shifts and time
//! reversal are undone by the builder). On top of the per-source maps it
//! offers the union views that the legacy free functions used to return
//! individually: reachable sets, eccentricities, earliest arrivals, distinct
//! reached node identifiers and shortest-path reconstruction.

use egraph_core::distance::DistanceMap;
use egraph_core::ids::{NodeId, TemporalNode, TimeIndex};

use std::collections::BTreeMap;

/// The result of executing a [`Search`](crate::Search).
#[derive(Clone, Debug)]
pub struct SearchResult {
    maps: Vec<DistanceMap>,
}

impl SearchResult {
    pub(crate) fn new(maps: Vec<DistanceMap>) -> Self {
        debug_assert!(!maps.is_empty(), "SearchResult requires at least one map");
        SearchResult { maps }
    }

    // ------------------------------------------------------------------
    // Per-source access
    // ------------------------------------------------------------------

    /// The sources of the search, in the order they were configured.
    pub fn sources(&self) -> Vec<TemporalNode> {
        self.maps.iter().map(|m| m.root()).collect()
    }

    /// The first (for single-source searches: the only) source.
    pub fn source(&self) -> TemporalNode {
        self.maps[0].root()
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.maps.len()
    }

    /// The per-source distance maps, in source order.
    pub fn distance_maps(&self) -> &[DistanceMap] {
        &self.maps
    }

    /// The first source's distance map — the natural accessor for
    /// single-source searches.
    pub fn distance_map(&self) -> &DistanceMap {
        &self.maps[0]
    }

    /// Consumes the result, returning the first source's distance map.
    pub fn into_distance_map(self) -> DistanceMap {
        self.maps.into_iter().next().expect("at least one map")
    }

    /// Consumes the result, returning every per-source distance map.
    pub fn into_distance_maps(self) -> Vec<DistanceMap> {
        self.maps
    }

    /// Distance from source number `index` to `tn`.
    pub fn distance_from(&self, index: usize, tn: TemporalNode) -> Option<u32> {
        self.maps.get(index).and_then(|m| m.distance(tn))
    }

    // ------------------------------------------------------------------
    // Union views
    // ------------------------------------------------------------------

    /// Distance to `tn`: for single-source searches the source's distance;
    /// for multi-source searches the minimum over sources.
    pub fn distance(&self, tn: TemporalNode) -> Option<u32> {
        self.maps.iter().filter_map(|m| m.distance(tn)).min()
    }

    /// Whether any source reaches `tn` (Definition 7 reachability).
    pub fn is_reached(&self, tn: TemporalNode) -> bool {
        self.maps.iter().any(|m| m.is_reached(tn))
    }

    /// All reached temporal nodes with their (minimum) distances, in
    /// time-major order. For a single source this equals
    /// `DistanceMap::reached`.
    pub fn reached(&self) -> Vec<(TemporalNode, u32)> {
        if self.maps.len() == 1 {
            return self.maps[0].reached();
        }
        let num_nodes = self.maps[0].num_nodes();
        let mut best: BTreeMap<usize, u32> = BTreeMap::new();
        for map in &self.maps {
            for (tn, d) in map.reached() {
                best.entry(tn.flat_index(num_nodes))
                    .and_modify(|x| *x = (*x).min(d))
                    .or_insert(d);
            }
        }
        best.into_iter()
            .map(|(flat, d)| (TemporalNode::from_flat_index(flat, num_nodes), d))
            .collect()
    }

    /// Number of distinct temporal nodes reached by any source (sources
    /// included).
    pub fn num_reached(&self) -> usize {
        if self.maps.len() == 1 {
            return self.maps[0].num_reached();
        }
        self.reached().len()
    }

    /// The temporal nodes reachable from the sources, *excluding* the
    /// sources themselves — the return shape of the legacy `reachable_set`.
    pub fn reachable_set(&self) -> Vec<TemporalNode> {
        let sources = self.sources();
        self.reached()
            .into_iter()
            .map(|(tn, _)| tn)
            .filter(|tn| !sources.contains(tn))
            .collect()
    }

    /// The largest finite distance — the temporal eccentricity of the source
    /// (for multi-source searches: the maximum per-source eccentricity).
    pub fn eccentricity(&self) -> u32 {
        self.maps
            .iter()
            .map(|m| m.max_distance())
            .max()
            .unwrap_or(0)
    }

    /// Alias for [`SearchResult::eccentricity`], mirroring
    /// `DistanceMap::max_distance`.
    pub fn max_distance(&self) -> u32 {
        self.eccentricity()
    }

    /// The distinct *node* identifiers reached at any snapshot by any source
    /// — the influence set `T(a, t)` of Section V for a forward search.
    pub fn reached_node_ids(&self) -> Vec<NodeId> {
        if self.maps.len() == 1 {
            return self.maps[0].reached_node_ids();
        }
        let num_nodes = self.maps[0].num_nodes();
        let mut seen = vec![false; num_nodes];
        for map in &self.maps {
            for node in map.reached_node_ids() {
                seen[node.index()] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(v, _)| NodeId::from_index(v))
            .collect()
    }

    /// The earliest snapshot at which `node` is reached by any source — the
    /// "foremost" arrival time for forward searches. `None` if unreached.
    ///
    /// Scans only `node`'s time row of each map (`O(sources · snapshots)`),
    /// so calling it per node stays linear overall.
    pub fn earliest_arrival(&self, node: NodeId) -> Option<TimeIndex> {
        if node.index() >= self.maps[0].num_nodes() {
            return None;
        }
        let num_timestamps = self.maps[0].num_timestamps();
        (0..num_timestamps).map(TimeIndex::from_index).find(|&t| {
            self.maps
                .iter()
                .any(|m| m.is_reached(TemporalNode::new(node, t)))
        })
    }

    /// Earliest arrival snapshots for every reached node, keyed by node.
    pub fn arrival_times(&self) -> Vec<(NodeId, TimeIndex)> {
        if self.maps.len() == 1 {
            return self.maps[0].earliest_reach_times();
        }
        let num_nodes = self.maps[0].num_nodes();
        let mut earliest: Vec<Option<TimeIndex>> = vec![None; num_nodes];
        for map in &self.maps {
            for (node, t) in map.earliest_reach_times() {
                let slot = &mut earliest[node.index()];
                if slot.map(|cur| t < cur).unwrap_or(true) {
                    *slot = Some(t);
                }
            }
        }
        earliest
            .iter()
            .enumerate()
            .filter_map(|(v, t)| t.map(|t| (NodeId::from_index(v), t)))
            .collect()
    }

    /// Reconstructs a shortest temporal path to `tn` from the source that
    /// reaches it at minimum distance. Requires the search to have been built
    /// with [`Search::with_parents`](crate::Search::with_parents); returns
    /// `None` otherwise or if `tn` is unreached.
    pub fn path_to(&self, tn: TemporalNode) -> Option<Vec<TemporalNode>> {
        self.maps
            .iter()
            .filter(|m| m.is_reached(tn))
            .min_by_key(|m| m.distance(tn).unwrap_or(u32::MAX))
            .and_then(|m| m.path_to(tn))
    }

    /// Histogram of (minimum) distances: entry `k` counts temporal nodes at
    /// distance `k`. Entry 0 counts the sources.
    pub fn distance_histogram(&self) -> Vec<usize> {
        if self.maps.len() == 1 {
            return self.maps[0].distance_histogram();
        }
        let reached = self.reached();
        let depth = reached.iter().map(|&(_, d)| d).max().unwrap_or(0);
        let mut hist = vec![0usize; depth as usize + 1];
        for (_, d) in reached {
            hist[d as usize] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Search;
    use egraph_core::examples::paper_figure1;
    use egraph_core::foremost::earliest_arrival;
    use egraph_core::graph::EvolvingGraph as _;
    use egraph_core::metrics::eccentricity;

    #[test]
    fn single_source_accessors_match_distance_map() {
        let g = paper_figure1();
        let root = TemporalNode::from_raw(0, 0);
        let result = Search::from(root).run(&g).unwrap();
        let map = result.distance_map().clone();
        assert_eq!(result.source(), root);
        assert_eq!(result.num_sources(), 1);
        assert_eq!(result.num_reached(), map.num_reached());
        assert_eq!(result.reached(), map.reached());
        assert_eq!(result.reached_node_ids(), map.reached_node_ids());
        assert_eq!(result.arrival_times(), map.earliest_reach_times());
        assert_eq!(result.distance_histogram(), map.distance_histogram());
        assert_eq!(result.max_distance(), map.max_distance());
    }

    #[test]
    fn eccentricity_matches_the_legacy_metric() {
        let g = paper_figure1();
        for &root in &g.active_nodes() {
            let result = Search::from(root).run(&g).unwrap();
            assert_eq!(Some(result.eccentricity()), eccentricity(&g, root));
        }
    }

    #[test]
    fn earliest_arrival_matches_the_foremost_sweep() {
        let g = paper_figure1();
        for &root in &g.active_nodes() {
            let result = Search::from(root).run(&g).unwrap();
            let foremost = earliest_arrival(&g, root);
            for v in 0..3u32 {
                assert_eq!(
                    result.earliest_arrival(NodeId(v)),
                    foremost.arrival(NodeId(v)),
                    "root {root:?}, node {v}"
                );
            }
        }
    }

    #[test]
    fn reachable_set_excludes_every_source() {
        let g = paper_figure1();
        let sources = [TemporalNode::from_raw(0, 0), TemporalNode::from_raw(0, 1)];
        let result = Search::from_sources(sources).run(&g).unwrap();
        let set = result.reachable_set();
        for s in sources {
            assert!(!set.contains(&s));
        }
        assert!(set.contains(&TemporalNode::from_raw(2, 2)));
    }

    #[test]
    fn union_counts_deduplicate() {
        let g = paper_figure1();
        let a = TemporalNode::from_raw(0, 0);
        let result = Search::from_sources([a, a]).run(&g).unwrap();
        // The same source twice reaches exactly what one copy reaches.
        let single = Search::from(a).run(&g).unwrap();
        assert_eq!(result.num_reached(), single.num_reached());
        assert_eq!(result.reached(), single.reached());
    }
}
