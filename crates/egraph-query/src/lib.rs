//! # egraph-query
//!
//! One entry point for every evolving-graph search.
//!
//! The paper's thesis is that searching an evolving graph is *one* problem
//! with several equivalent execution strategies: the adjacency-list BFS of
//! Algorithm 1, its frontier-parallel variant, and the algebraic block-matrix
//! formulation of Algorithm 2 (equivalent by Theorem 4). This crate puts a
//! single composable query layer — [`Search`] — in front of those
//! interchangeable engines, instead of scattering the concept across a dozen
//! free functions that each hard-code one strategy and one traversal
//! direction.
//!
//! ```
//! use egraph_core::examples::paper_figure1;
//! use egraph_core::ids::TemporalNode;
//! use egraph_query::{Direction, Search, Strategy};
//!
//! let g = paper_figure1();
//!
//! // Forward BFS from (1, t1), serial engine (the default).
//! let result = Search::from(TemporalNode::from_raw(0, 0)).run(&g).unwrap();
//! assert_eq!(result.distance(TemporalNode::from_raw(2, 2)), Some(3));
//!
//! // The same query on the algebraic engine gives identical distances.
//! let algebraic = Search::from(TemporalNode::from_raw(0, 0))
//!     .strategy(Strategy::Algebraic)
//!     .run(&g)
//!     .unwrap();
//! assert_eq!(result.reached(), algebraic.reached());
//!
//! // Backward in time from (3, t3): who could have influenced it?
//! let back = Search::from(TemporalNode::from_raw(2, 2))
//!     .direction(Direction::Backward)
//!     .run(&g)
//!     .unwrap();
//! assert!(back.is_reached(TemporalNode::from_raw(0, 0)));
//! ```
//!
//! The builder folds view composition in as well: [`Search::window`]
//! restricts the traversal to a contiguous snapshot range (the
//! `TimeWindowView` of Section II-C) and [`Search::reverse`] runs the query
//! on the time-reversed graph (Section V's `t → −t` transformation), with
//! sources and results always expressed in the *original* graph's
//! coordinates. Multi-source queries ([`Search::from_sources`]) run one
//! traversal per source and expose both per-source and union views of the
//! result.
//!
//! | legacy free function | builder equivalent |
//! |---|---|
//! | `bfs(&g, root)` | `Search::from(root).run(&g)` |
//! | `backward_bfs(&g, root)` | `Search::from(root).direction(Direction::Backward).run(&g)` |
//! | `par_bfs(&g, root)` | `Search::from(root).strategy(Strategy::Parallel).run(&g)` |
//! | `algebraic_bfs(&g, root)` | `Search::from(root).strategy(Strategy::Algebraic).run(&g)` |
//! | `multi_source_bfs(&g, roots)` | `Search::from_sources(roots).run(&g)` |
//! | `reachable_set(&g, root)` | `Search::from(root).run(&g)?.reachable_set()` |
//! | `is_reachable(&g, a, b)` | `Search::from(a).run(&g)?.is_reached(b)` |
//! | `distance_between(&g, a, b)` | `Search::from(a).run(&g)?.distance(b)` |
//! | `eccentricity(&g, root)` | `Search::from(root).run(&g)?.eccentricity()` |
//! | `earliest_arrival(&g, root)` | `Search::from(root).run(&g)?.earliest_arrival(v)` |
//! | `bfs(&TimeWindowView::new(&g, a, b)?, root)` | `Search::from(root).window(a..=b).run(&g)` |
//! | `bfs(&ReversedView::new(&g), root)` | `Search::from(root).reverse().run(&g)` |
//!
//! The legacy functions remain available (the engines live in `egraph-core`
//! and `egraph-matrix`; the builder dispatches to them), so existing code
//! keeps working while new code gets a single coherent entry point.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod result;
mod view_map;

pub use builder::{Search, Strategy, WindowSpec};
pub use egraph_core::bfs::Direction;
pub use result::SearchResult;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::builder::{Search, Strategy, WindowSpec};
    pub use crate::result::SearchResult;
    pub use egraph_core::bfs::Direction;
}
