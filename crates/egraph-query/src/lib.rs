//! # egraph-query
//!
//! One entry point for every evolving-graph search.
//!
//! The paper's thesis is that searching an evolving graph is *one* problem
//! with several equivalent execution strategies: the adjacency-list BFS of
//! Algorithm 1, its frontier-parallel variant, and the algebraic block-matrix
//! formulation of Algorithm 2 (equivalent by Theorem 4). This crate puts a
//! single composable query layer — [`Search`] — in front of those
//! interchangeable engines, instead of scattering the concept across a dozen
//! free functions that each hard-code one strategy and one traversal
//! direction.
//!
//! ```
//! use egraph_core::examples::paper_figure1;
//! use egraph_core::ids::TemporalNode;
//! use egraph_query::{Direction, Search, Strategy};
//!
//! let g = paper_figure1();
//!
//! // Forward BFS from (1, t1), serial engine (the default).
//! let result = Search::from(TemporalNode::from_raw(0, 0)).run(&g).unwrap();
//! assert_eq!(result.distance(TemporalNode::from_raw(2, 2)), Some(3));
//!
//! // The same query on the algebraic engine gives identical distances.
//! let algebraic = Search::from(TemporalNode::from_raw(0, 0))
//!     .strategy(Strategy::Algebraic)
//!     .run(&g)
//!     .unwrap();
//! assert_eq!(result.reached(), algebraic.reached());
//!
//! // Backward in time from (3, t3): who could have influenced it?
//! let back = Search::from(TemporalNode::from_raw(2, 2))
//!     .direction(Direction::Backward)
//!     .run(&g)
//!     .unwrap();
//! assert!(back.is_reached(TemporalNode::from_raw(0, 0)));
//! ```
//!
//! The builder folds view composition in as well: [`Search::window`]
//! restricts the traversal to a contiguous snapshot range (the
//! `TimeWindowView` of Section II-C) and [`Search::reverse`] runs the query
//! on the time-reversed graph (Section V's `t → −t` transformation), with
//! sources and results always expressed in the *original* graph's
//! coordinates. Multi-source queries ([`Search::from_sources`]) run one
//! traversal per source under the hop-distance strategies and expose both
//! per-source and union views of the result, or a single shared-frontier
//! traversal under [`Strategy::SharedFrontier`].
//!
//! ## Choosing a strategy
//!
//! | strategy | engine | cost model | answers | use when |
//! |---|---|---|---|---|
//! | [`Strategy::Serial`] (default) | Algorithm 1 adjacency-list BFS | `O(\|E\| + \|V\|)` per source | hop distances, BFS-tree parents | general queries; the only engine that records parents for [`SearchResult::path_to`] |
//! | [`Strategy::Parallel`] | frontier-parallel Algorithm 1 | `O(\|E\| + \|V\|)` work per source; levels above [`Search::parallel_threshold`] chunked across the self-scheduling thread pool | hop distances | wide frontiers on multi-core hosts — real speedup, bit-for-bit identical results to `Serial` at every pool size |
//! | [`Strategy::Algebraic`] | Algorithm 2 block-matrix power iteration | `O(d · \|E\|)` for BFS depth `d` | hop distances | linear-algebra backends / ablations; dense small graphs |
//! | [`Strategy::Foremost`] | time-ordered earliest-arrival sweep | `O(\|Ẽ\| + N·n)` per source — no temporal-node expansion | arrival snapshots only (latest departures when time-reversed) | arrival-only queries ("when is `v` first reached?"); strictly less work than deriving arrivals from a full hop-BFS |
//! | [`Strategy::SharedFrontier`] | multi-source BFS, one shared frontier | `O(\|E\| + \|V\|)` **total**, independent of source count | nearest-source distance + source id per temporal node | many sources where only the nearest one matters (facility-location / coverage queries); the per-source loop costs the same *per source* |
//!
//! Here `\|Ẽ\|` counts static edges, `\|V\|`/`\|E\|` the active temporal
//! nodes and equivalent-static-graph edges (causal edges included), `N` the
//! node universe and `n` the snapshot count. All five strategies are pinned
//! against each other by the workspace's differential suites
//! (`tests/search_equivalence.rs`, `tests/foremost_equivalence.rs`,
//! `tests/multi_source_equivalence.rs`): on every generated workload the
//! answers a strategy produces must equal the hop engines' answers for the
//! same query.
//!
//! | legacy free function | builder equivalent |
//! |---|---|
//! | `bfs(&g, root)` | `Search::from(root).run(&g)` |
//! | `backward_bfs(&g, root)` | `Search::from(root).direction(Direction::Backward).run(&g)` |
//! | `par_bfs(&g, root)` | `Search::from(root).strategy(Strategy::Parallel).run(&g)` |
//! | `algebraic_bfs(&g, root)` | `Search::from(root).strategy(Strategy::Algebraic).run(&g)` |
//! | `multi_source_bfs(&g, roots)` | `Search::from_sources(roots).run(&g)` |
//! | `multi_source_shared(&g, roots)` | `Search::from_sources(roots).strategy(Strategy::SharedFrontier).run(&g)` |
//! | `earliest_arrival(&g, root)` (dedicated sweep) | `Search::from(root).strategy(Strategy::Foremost).run(&g)?.arrival(v)` |
//! | `reachable_set(&g, root)` | `Search::from(root).run(&g)?.reachable_set()` |
//! | `is_reachable(&g, a, b)` | `Search::from(a).run(&g)?.is_reached(b)` |
//! | `distance_between(&g, a, b)` | `Search::from(a).run(&g)?.distance(b)` |
//! | `eccentricity(&g, root)` | `Search::from(root).run(&g)?.eccentricity()` |
//! | `earliest_arrival(&g, root)` | `Search::from(root).run(&g)?.earliest_arrival(v)` |
//! | `bfs(&TimeWindowView::new(&g, a, b)?, root)` | `Search::from(root).window(a..=b).run(&g)` |
//! | `bfs(&ReversedView::new(&g), root)` | `Search::from(root).reverse().run(&g)` |
//!
//! The legacy functions remain available (the engines live in `egraph-core`
//! and `egraph-matrix`; the builder dispatches to them), so existing code
//! keeps working while new code gets a single coherent entry point.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
pub mod codec;
mod descriptor;
mod prepared;
mod result;
mod view_map;

pub use builder::{Search, Strategy, WindowSpec};
pub use descriptor::{AppendRepair, QueryDescriptor, QueryExecutor};
pub use egraph_core::bfs::Direction;
pub use prepared::Prepared;
pub use result::SearchResult;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::builder::{Search, Strategy, WindowSpec};
    pub use crate::descriptor::{AppendRepair, QueryDescriptor, QueryExecutor};
    pub use crate::prepared::Prepared;
    pub use crate::result::SearchResult;
    pub use egraph_core::bfs::Direction;
}
