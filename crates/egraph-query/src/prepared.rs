//! [`Prepared`]: a graph with engine-side structures prebuilt, so repeated
//! queries stop paying per-run assembly costs.
//!
//! [`Strategy::Algebraic`](crate::Strategy::Algebraic) normally rebuilds the
//! block adjacency matrix of Section III-C on **every**
//! [`Search::run`](crate::Search::run) — fine for one-off queries, wasteful
//! for query mixes that hit the same graph repeatedly (the benchmark
//! ablations, a server answering many roots). `Prepared::new` assembles the
//! blocks once; [`Search::run_prepared`](crate::Search::run_prepared) then
//! reuses them for every full-graph forward algebraic query and falls back
//! to the ordinary path (rebuilding on the composed view) for query shapes
//! the prebuilt blocks cannot serve — windows, time reversal, other
//! strategies. Answers and errors are identical either way.
//!
//! Because `Prepared` holds a shared borrow of the graph, the borrow checker
//! rules out the staleness hazard: the graph cannot be mutated while a
//! `Prepared` for it is alive.

use egraph_core::graph::EvolvingGraph;
use egraph_matrix::block::BlockAdjacency;

/// An evolving graph bundled with its prebuilt [`BlockAdjacency`].
///
/// Build once with [`Prepared::new`], then pass to
/// [`Search::run_prepared`](crate::Search::run_prepared) as often as needed.
#[derive(Debug)]
pub struct Prepared<'g, G> {
    graph: &'g G,
    blocks: BlockAdjacency,
}

impl<'g, G: EvolvingGraph> Prepared<'g, G> {
    /// Assembles the engine-side structures for `graph` (one pass over its
    /// static edges and activeness sets).
    pub fn new(graph: &'g G) -> Self {
        Prepared {
            graph,
            blocks: BlockAdjacency::from_graph(graph),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g G {
        self.graph
    }

    /// The prebuilt block adjacency matrix.
    pub fn blocks(&self) -> &BlockAdjacency {
        &self.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Search, Strategy};
    use egraph_core::error::GraphError;
    use egraph_core::examples::paper_figure1;
    use egraph_core::ids::TemporalNode;

    #[test]
    fn prepared_algebraic_matches_the_ordinary_path() {
        let g = paper_figure1();
        let prepared = Prepared::new(&g);
        for &root in &g.active_nodes() {
            let search = Search::from(root).strategy(Strategy::Algebraic);
            let plain = search.run(&g).unwrap();
            let reused = search.run_prepared(&prepared).unwrap();
            assert_eq!(
                plain.distance_map().as_flat_slice(),
                reused.distance_map().as_flat_slice(),
                "root {root:?}"
            );
        }
    }

    #[test]
    fn prepared_multi_source_reuses_the_blocks_per_source() {
        let g = paper_figure1();
        let prepared = Prepared::new(&g);
        let sources = [TemporalNode::from_raw(0, 0), TemporalNode::from_raw(0, 1)];
        let search = Search::from_sources(sources).strategy(Strategy::Algebraic);
        let plain = search.run(&g).unwrap();
        let reused = search.run_prepared(&prepared).unwrap();
        for tn in g.active_nodes() {
            assert_eq!(plain.distance(tn), reused.distance(tn), "{tn:?}");
        }
        assert_eq!(reused.num_sources(), 2);
    }

    #[test]
    fn unsupported_shapes_fall_back_with_identical_answers() {
        let g = paper_figure1();
        let prepared = Prepared::new(&g);
        let shapes = [
            Search::from(TemporalNode::from_raw(2, 2))
                .strategy(Strategy::Algebraic)
                .backward(),
            Search::from(TemporalNode::from_raw(0, 1))
                .strategy(Strategy::Algebraic)
                .window(1u32..=2),
            Search::from(TemporalNode::from_raw(0, 0)), // serial strategy
        ];
        for search in shapes {
            let plain = search.run(&g).unwrap();
            let reused = search.run_prepared(&prepared).unwrap();
            assert_eq!(
                plain.distance_map().as_flat_slice(),
                reused.distance_map().as_flat_slice()
            );
        }
    }

    #[test]
    fn errors_are_identical_to_the_ordinary_path() {
        let g = paper_figure1();
        let prepared = Prepared::new(&g);
        let cases = [
            Search::from(TemporalNode::from_raw(2, 0)).strategy(Strategy::Algebraic),
            Search::from(TemporalNode::from_raw(9, 0)).strategy(Strategy::Algebraic),
            Search::from(TemporalNode::from_raw(0, 9)).strategy(Strategy::Algebraic),
            Search::from_sources(Vec::<TemporalNode>::new()).strategy(Strategy::Algebraic),
        ];
        for search in cases {
            let plain = search.run(&g).unwrap_err();
            let reused = search.run_prepared(&prepared).unwrap_err();
            assert_eq!(plain, reused);
        }
        assert!(matches!(
            Search::from(TemporalNode::from_raw(2, 0))
                .strategy(Strategy::Algebraic)
                .run_prepared(&prepared)
                .unwrap_err(),
            GraphError::InactiveRoot { .. }
        ));
    }
}
