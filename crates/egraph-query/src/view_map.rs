//! Coordinate mapping between a composed view (time window and/or time
//! reversal) and the underlying graph.
//!
//! The [`Search`](crate::Search) builder accepts sources in the *original*
//! graph's coordinates, runs the chosen engine on a composed view, and maps
//! every reached temporal node (and BFS-tree parent) back. This module holds
//! the tiny bijection that makes that round trip exact.

use egraph_core::ids::{TemporalNode, TimeIndex};

/// An affine snapshot-index bijection `original ↔ view`: drop the snapshots
/// before `window_start`, keep `view_len` of them, and optionally flip the
/// order (time reversal).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ViewMap {
    /// First original snapshot index inside the window.
    pub window_start: usize,
    /// Number of snapshots in the view.
    pub view_len: usize,
    /// Whether the view runs backwards in time.
    pub reversed: bool,
}

impl ViewMap {
    /// Maps an original snapshot index into the view, if it lies inside the
    /// window.
    pub fn time_to_view(&self, t: TimeIndex) -> Option<TimeIndex> {
        let t = t.index();
        if t < self.window_start || t >= self.window_start + self.view_len {
            return None;
        }
        let rel = t - self.window_start;
        let rel = if self.reversed {
            self.view_len - 1 - rel
        } else {
            rel
        };
        Some(TimeIndex::from_index(rel))
    }

    /// Maps a view snapshot index back to the original graph.
    ///
    /// # Panics
    /// Panics (in debug builds) if `t` is outside the view.
    pub fn time_to_original(&self, t: TimeIndex) -> TimeIndex {
        let rel = t.index();
        debug_assert!(rel < self.view_len, "view time {rel} out of range");
        let rel = if self.reversed {
            self.view_len - 1 - rel
        } else {
            rel
        };
        TimeIndex::from_index(self.window_start + rel)
    }

    /// Maps an original temporal node into the view.
    pub fn node_to_view(&self, tn: TemporalNode) -> Option<TemporalNode> {
        self.time_to_view(tn.time)
            .map(|t| TemporalNode::new(tn.node, t))
    }

    /// Maps a view temporal node back to the original graph.
    pub fn node_to_original(&self, tn: TemporalNode) -> TemporalNode {
        TemporalNode::new(tn.node, self.time_to_original(tn.time))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trips() {
        let m = ViewMap {
            window_start: 0,
            view_len: 5,
            reversed: false,
        };
        for t in 0..5u32 {
            let t = TimeIndex(t);
            assert_eq!(m.time_to_view(t), Some(t));
            assert_eq!(m.time_to_original(t), t);
        }
    }

    #[test]
    fn window_shifts_indices() {
        let m = ViewMap {
            window_start: 2,
            view_len: 3,
            reversed: false,
        };
        assert_eq!(m.time_to_view(TimeIndex(2)), Some(TimeIndex(0)));
        assert_eq!(m.time_to_view(TimeIndex(4)), Some(TimeIndex(2)));
        assert_eq!(m.time_to_view(TimeIndex(1)), None);
        assert_eq!(m.time_to_view(TimeIndex(5)), None);
        assert_eq!(m.time_to_original(TimeIndex(1)), TimeIndex(3));
    }

    #[test]
    fn reversal_flips_inside_the_window() {
        let m = ViewMap {
            window_start: 1,
            view_len: 4,
            reversed: true,
        };
        // original 1..=4 maps to view 3,2,1,0.
        assert_eq!(m.time_to_view(TimeIndex(1)), Some(TimeIndex(3)));
        assert_eq!(m.time_to_view(TimeIndex(4)), Some(TimeIndex(0)));
        // The mapping is an involution on the window.
        for t in 1..5u32 {
            let t = TimeIndex(t);
            let v = m.time_to_view(t).unwrap();
            assert_eq!(m.time_to_original(v), t);
        }
    }
}
