//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides the *exact* API surface the workspace uses —
//! `SmallRng::seed_from_u64`, `Rng::gen_range` over half-open ranges and
//! `Rng::gen_bool` — backed by the SplitMix64 generator. SplitMix64 is a
//! well-studied 64-bit mixer (Steele, Lea & Flood, OOPSLA 2014) with full
//! period 2⁶⁴ and good equidistribution, which is more than sufficient for
//! the deterministic workload generators and property suites in this
//! repository.
//!
//! The shim is deliberately *not* statistically compatible with upstream
//! `rand`: seeds produce different streams. Every consumer in this workspace
//! treats the RNG as an opaque deterministic stream, so only reproducibility
//! (same seed ⇒ same stream) matters, and that is guaranteed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// Types that can be created from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from `seed`. The mapping is deterministic.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from the half-open range `low..high`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a `f64` in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly sampleable from a half-open range. Sealed in spirit: only
/// the implementations below are meaningful for this workspace.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `range` using `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo reduction; the bias is < span / 2^64, negligible for
                // the workload sizes in this repository.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (range.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        range.start + unit_f64(rng.next_u64()) * (range.end - range.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64: increment by the golden-ratio constant, then mix.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<usize> = (0..32).map(|_| a.gen_range(0usize..1_000_000)).collect();
        let vb: Vec<usize> = (0..32).map(|_| b.gen_range(0usize..1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let trials = 100_000;
        let hits = (0..trials).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        let mut rng = SmallRng::seed_from_u64(12);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut buckets = [0usize; 10];
        let trials = 100_000;
        for _ in 0..trials {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            let expected = trials / 10;
            assert!(
                (b as f64 - expected as f64).abs() < 0.05 * expected as f64,
                "bucket count {b} too far from {expected}"
            );
        }
    }
}
