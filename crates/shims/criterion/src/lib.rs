//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the bench-definition API surface used by `egraph-bench` — benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `Throughput`, `BatchSize` and the
//! `criterion_group!` / `criterion_main!` macros — with a lightweight
//! wall-clock measurement loop instead of criterion's statistical machinery.
//!
//! Each benchmark is warmed up once, then run either `sample_size` times or
//! until a ~200 ms budget is exhausted, whichever comes first; the mean and
//! minimum iteration times are printed in a criterion-like single line.
//! Results are honest wall-clock numbers, just without outlier analysis or
//! HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimizer barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark time budget for the measurement loop.
const TIME_BUDGET: Duration = Duration::from_millis(200);

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group: {name}");
        // Groups inherit the driver's sample size until they override it.
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Defines a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples (minimum 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work performed per iteration. Recorded only for API
    /// compatibility; the stand-in does not normalise by throughput.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Defines a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&label, self.sample_size, &mut f);
        self
    }

    /// Defines a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_bench<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        eprintln!("  {label}: no samples");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    eprintln!(
        "  {label}: mean {mean:?}, min {min:?} ({} samples)",
        bencher.samples.len()
    );
}

/// Measures closures handed to it by a benchmark definition.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine`, called once per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up run, not recorded.
        black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }

    /// Measures `routine` over inputs produced by `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

/// How per-iteration inputs are batched (API compatibility only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: one per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Work performed per iteration, for throughput-normalised reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier combining a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an identifier `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Conversion into a printable benchmark identifier; lets group methods
/// accept both `&str` names and [`BenchmarkId`]s, as criterion does.
pub trait IntoBenchmarkId {
    /// The printable identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut counter = 0u64;
        c.bench_function("count", |b| b.iter(|| counter += 1));
        assert!(counter > 0);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut hits = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 42), &5u64, |b, &x| {
            b.iter(|| hits += x)
        });
        group.bench_function("plain", |b| {
            b.iter_batched(|| 2u64, |x| hits += x, BatchSize::LargeInput)
        });
        group.finish();
        assert!(hits > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
    }
}
