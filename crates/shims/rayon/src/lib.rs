//! Offline stand-in for the `rayon` crate — with a **real** executor.
//!
//! The build environment has no access to crates.io, so this crate mirrors
//! the subset of rayon's parallel-iterator API the workspace uses —
//! `par_iter()` / `par_iter_mut()` / `into_par_iter()` with `map`, `filter`,
//! `filter_map`, `fold`, `reduce`, `for_each`, `sum`, `count` and `collect` —
//! and, since PR 5, executes it on a lazily-initialized global pool of
//! `std::thread` workers (the `pool` module): the input index range is split
//! into cache-friendly chunks, chunks are claimed dynamically by the pool's
//! threads (the caller included), and per-chunk outputs are recombined **in
//! input order**, so every combinator is deterministic and order-preserving
//! exactly like real rayon's indexed iterators.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (or the machine's available
//! parallelism); [`ThreadPoolBuilder`] + [`ThreadPool::install`] scope an
//! explicit count, which the workspace's determinism suites use to pin
//! results across 1, 2 and 8 threads. Panics inside parallel closures
//! propagate to the caller and leave the pool serviceable. With one thread,
//! every operation runs inline on the caller — bit-for-bit the behavior of
//! the old sequential stand-in.
//!
//! All algorithms in this workspace are written so their results are
//! identical regardless of execution interleaving (discoveries within a BFS
//! level go through atomic first-writer-wins claims, per-root searches are
//! independent, matrix rows are independent reductions), which the
//! differential suites check under several pool sizes. Swapping the real
//! rayon back in remains a one-line change in each `Cargo.toml`.

#![deny(unsafe_code)] // one audited exception in pool.rs (lifetime erasure)
#![warn(missing_docs)]

mod pool;

pub use pool::{current_num_threads, spawn, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

use std::sync::Arc;

/// How many chunks each scheduling thread gets on average. Oversplitting
/// lets the dynamic chunk claim smooth out uneven per-item cost without the
/// per-item overhead of task-per-element.
const CHUNKS_PER_THREAD: usize = 4;

/// A source of items that can be split by index range and drained
/// sequentially — the shim's analogue of rayon's `Producer`. Implementations
/// are provided for slices, vectors, ranges and the lazy combinator
/// adaptors; user code never implements this.
pub trait Producer: Send + Sized {
    /// The element type this producer yields.
    type Item: Send;

    /// Number of *base* items (pre-`filter`); used for chunk sizing.
    fn len(&self) -> usize;

    /// Whether the producer holds no base items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into the first `index` base items and the rest.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Feeds every item, in order, to `sink`.
    fn drive(self, sink: &mut dyn FnMut(Self::Item));
}

/// A parallel iterator: a splittable pipeline executed across the ambient
/// thread pool by the terminal methods (`reduce`, `for_each`, `sum`,
/// `collect`, `count`).
pub struct ParIter<P: Producer> {
    producer: P,
}

// ---------------------------------------------------------------------------
// Base producers
// ---------------------------------------------------------------------------

/// Borrowing producer over a slice (`par_iter`).
pub struct SliceProducer<'data, T: Sync> {
    slice: &'data [T],
}

impl<'data, T: Sync> Producer for SliceProducer<'data, T> {
    type Item = &'data T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.slice.split_at(index);
        (SliceProducer { slice: head }, SliceProducer { slice: tail })
    }
    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        for item in self.slice {
            sink(item);
        }
    }
}

/// Mutably borrowing producer over a slice (`par_iter_mut`).
pub struct SliceMutProducer<'data, T: Send> {
    slice: &'data mut [T],
}

impl<'data, T: Send> Producer for SliceMutProducer<'data, T> {
    type Item = &'data mut T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.slice.split_at_mut(index);
        (
            SliceMutProducer { slice: head },
            SliceMutProducer { slice: tail },
        )
    }
    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        for item in self.slice {
            sink(item);
        }
    }
}

/// Owning producer over a vector (`Vec::into_par_iter`). Splitting moves the
/// tail into a new vector, so chunks can migrate to workers without copies
/// of the elements themselves.
pub struct VecProducer<T: Send> {
    items: Vec<T>,
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.items.len()
    }
    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.items.split_off(index);
        (self, VecProducer { items: tail })
    }
    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        for item in self.items {
            sink(item);
        }
    }
}

/// Sealed helper giving [`RangeProducer`] a single generic implementation
/// over the index types the workspace iterates (`usize`, `u32`).
pub trait RangeIndex: Copy + Send + 'static {
    #[doc(hidden)]
    fn steps_between(start: Self, end: Self) -> usize;
    #[doc(hidden)]
    fn advance(self, by: usize) -> Self;
    #[doc(hidden)]
    fn successor(self) -> Self;
}

impl RangeIndex for usize {
    fn steps_between(start: Self, end: Self) -> usize {
        end.saturating_sub(start)
    }
    fn advance(self, by: usize) -> Self {
        self + by
    }
    fn successor(self) -> Self {
        self + 1
    }
}

impl RangeIndex for u32 {
    fn steps_between(start: Self, end: Self) -> usize {
        end.saturating_sub(start) as usize
    }
    fn advance(self, by: usize) -> Self {
        self + by as u32
    }
    fn successor(self) -> Self {
        self + 1
    }
}

/// Producer over an integer range (`(a..b).into_par_iter()`).
pub struct RangeProducer<T: RangeIndex> {
    start: T,
    end: T,
}

impl<T: RangeIndex> Producer for RangeProducer<T> {
    type Item = T;
    fn len(&self) -> usize {
        T::steps_between(self.start, self.end)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = self.start.advance(index);
        (
            RangeProducer {
                start: self.start,
                end: mid,
            },
            RangeProducer {
                start: mid,
                end: self.end,
            },
        )
    }
    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        let mut current = self.start;
        for _ in 0..T::steps_between(self.start, self.end) {
            sink(current);
            current = current.successor();
        }
    }
}

// ---------------------------------------------------------------------------
// Combinator producers
// ---------------------------------------------------------------------------

/// Lazy `map` adaptor. The closure is shared across chunks behind an `Arc`
/// (rayon shares it by reference; the `Arc` costs one allocation per
/// combinator per call and keeps this crate free of scoped borrows).
pub struct MapProducer<P, F> {
    base: P,
    map: Arc<F>,
}

impl<P, F, R> Producer for MapProducer<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(index);
        (
            MapProducer {
                base: head,
                map: Arc::clone(&self.map),
            },
            MapProducer {
                base: tail,
                map: self.map,
            },
        )
    }
    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        let map = &*self.map;
        self.base.drive(&mut |item| sink(map(item)));
    }
}

/// Lazy `filter` adaptor.
pub struct FilterProducer<P, F> {
    base: P,
    keep: Arc<F>,
}

impl<P, F> Producer for FilterProducer<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Send + Sync,
{
    type Item = P::Item;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(index);
        (
            FilterProducer {
                base: head,
                keep: Arc::clone(&self.keep),
            },
            FilterProducer {
                base: tail,
                keep: self.keep,
            },
        )
    }
    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        let keep = &*self.keep;
        self.base.drive(&mut |item| {
            if keep(&item) {
                sink(item);
            }
        });
    }
}

/// Lazy `filter_map` adaptor.
pub struct FilterMapProducer<P, F> {
    base: P,
    map: Arc<F>,
}

impl<P, F, R> Producer for FilterMapProducer<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> Option<R> + Send + Sync,
    R: Send,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(index);
        (
            FilterMapProducer {
                base: head,
                map: Arc::clone(&self.map),
            },
            FilterMapProducer {
                base: tail,
                map: self.map,
            },
        )
    }
    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        let map = &*self.map;
        self.base.drive(&mut |item| {
            if let Some(mapped) = map(item) {
                sink(mapped);
            }
        });
    }
}

/// Lazy split-wise `fold` adaptor: every *chunk* the executor drives yields
/// exactly one accumulator (rayon: one accumulator per split), so
/// `fold(...).collect::<Vec<_>>()` is the per-worker-buffer pattern and
/// `fold(...).reduce(...)` splices the buffers once.
pub struct FoldProducer<P, ID, F> {
    base: P,
    identity: Arc<ID>,
    fold_op: Arc<F>,
}

impl<P, T, ID, F> Producer for FoldProducer<P, ID, F>
where
    P: Producer,
    T: Send,
    ID: Fn() -> T + Send + Sync,
    F: Fn(T, P::Item) -> T + Send + Sync,
{
    type Item = T;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(index);
        (
            FoldProducer {
                base: head,
                identity: Arc::clone(&self.identity),
                fold_op: Arc::clone(&self.fold_op),
            },
            FoldProducer {
                base: tail,
                identity: self.identity,
                fold_op: self.fold_op,
            },
        )
    }
    fn drive(self, sink: &mut dyn FnMut(Self::Item)) {
        let fold_op = &*self.fold_op;
        let mut accumulator = Some((self.identity)());
        self.base.drive(&mut |item| {
            let acc = accumulator.take().expect("fold accumulator present");
            accumulator = Some(fold_op(acc, item));
        });
        sink(accumulator.take().expect("fold accumulator present"));
    }
}

// ---------------------------------------------------------------------------
// The combinator + terminal surface
// ---------------------------------------------------------------------------

impl<P: Producer> ParIter<P> {
    /// Applies `f` to every element (rayon: `ParallelIterator::map`).
    pub fn map<F, R>(self, f: F) -> ParIter<MapProducer<P, F>>
    where
        F: Fn(P::Item) -> R + Send + Sync,
        R: Send,
    {
        ParIter {
            producer: MapProducer {
                base: self.producer,
                map: Arc::new(f),
            },
        }
    }

    /// Keeps elements satisfying `f` (rayon: `ParallelIterator::filter`).
    pub fn filter<F>(self, f: F) -> ParIter<FilterProducer<P, F>>
    where
        F: Fn(&P::Item) -> bool + Send + Sync,
    {
        ParIter {
            producer: FilterProducer {
                base: self.producer,
                keep: Arc::new(f),
            },
        }
    }

    /// Filter-and-map in one pass (rayon: `ParallelIterator::filter_map`).
    pub fn filter_map<F, R>(self, f: F) -> ParIter<FilterMapProducer<P, F>>
    where
        F: Fn(P::Item) -> Option<R> + Send + Sync,
        R: Send,
    {
        ParIter {
            producer: FilterMapProducer {
                base: self.producer,
                map: Arc::new(f),
            },
        }
    }

    /// Rayon's split-wise fold: one accumulator per chunk the executor
    /// creates (so downstream `collect` sees the per-worker buffers, and
    /// downstream `reduce` splices them once).
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<FoldProducer<P, ID, F>>
    where
        T: Send,
        ID: Fn() -> T + Send + Sync,
        F: Fn(T, P::Item) -> T + Send + Sync,
    {
        ParIter {
            producer: FoldProducer {
                base: self.producer,
                identity: Arc::new(identity),
                fold_op: Arc::new(fold_op),
            },
        }
    }

    /// Reduces all elements with `op`, starting from `identity()` (rayon:
    /// `ParallelIterator::reduce`). Per-chunk partials are combined in input
    /// order, so reductions are deterministic even when `op` is not
    /// commutative.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        F: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        let partials = self.execute(|producer| {
            let mut accumulator: Option<P::Item> = None;
            producer.drive(&mut |item| {
                accumulator = Some(match accumulator.take() {
                    Some(acc) => op(acc, item),
                    None => item,
                });
            });
            accumulator
        });
        partials
            .into_iter()
            .flatten()
            .reduce(&op)
            .unwrap_or_else(identity)
    }

    /// Runs `f` on every element (rayon: `ParallelIterator::for_each`).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        self.execute(|producer| producer.drive(&mut |item| f(item)));
    }

    /// Sums the elements (rayon: `ParallelIterator::sum`).
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
    {
        self.execute(|producer| {
            let mut chunk = Vec::new();
            producer.drive(&mut |item| chunk.push(item));
            chunk.into_iter().sum::<S>()
        })
        .into_iter()
        .sum()
    }

    /// Collects into any `FromIterator` container, preserving input order
    /// (rayon: `ParallelIterator::collect`, including the
    /// `FromParallelIterator` impls for `Vec<T>` and `Vec<Result<T, E>>`).
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<P::Item>,
    {
        self.execute(|producer| {
            let mut chunk = Vec::new();
            producer.drive(&mut |item| chunk.push(item));
            chunk
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Returns the number of elements (rayon: `ParallelIterator::count`).
    pub fn count(self) -> usize {
        self.execute(|producer| {
            let mut count = 0usize;
            producer.drive(&mut |_| count += 1);
            count
        })
        .into_iter()
        .sum()
    }

    /// The execution core every terminal method funnels through: split the
    /// producer into contiguous chunks, run `per_chunk` on each across the
    /// ambient pool, and return the per-chunk outputs **in input order**.
    /// One chunk (or a 1-thread pool) bypasses the pool entirely.
    fn execute<R, F>(self, per_chunk: F) -> Vec<R>
    where
        R: Send,
        F: Fn(P) -> R + Sync,
    {
        let handle = pool::current_handle();
        let len = self.producer.len();
        let threads = handle.num_threads();
        if threads <= 1 || len <= 1 {
            return vec![per_chunk(self.producer)];
        }

        let target_chunks = (threads * CHUNKS_PER_THREAD).min(len).max(1);
        let chunk_size = len.div_ceil(target_chunks);
        // Peel fixed-size chunks off the TAIL, then reverse into input
        // order: for owned producers (`VecProducer`, whose `split_at` is
        // `Vec::split_off`) each element is moved exactly once — peeling
        // from the front would re-move the whole remaining tail per chunk,
        // O(len × chunks) instead of O(len).
        let mut chunks_rev: Vec<P> = Vec::with_capacity(target_chunks);
        let mut rest = self.producer;
        while rest.len() > chunk_size {
            let split_point = rest.len() - chunk_size;
            let (head, tail) = rest.split_at(split_point);
            chunks_rev.push(tail);
            rest = head;
        }
        chunks_rev.push(rest);
        let parts: Vec<std::sync::Mutex<Option<P>>> = chunks_rev
            .into_iter()
            .rev()
            .map(|chunk| std::sync::Mutex::new(Some(chunk)))
            .collect();

        let slots: Vec<std::sync::Mutex<Option<R>>> = (0..parts.len())
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        pool::run_chunks(&handle, parts.len(), &|index| {
            let producer = pool::lock(&parts[index])
                .take()
                .expect("each chunk is claimed exactly once");
            let output = per_chunk(producer);
            *pool::lock(&slots[index]) = Some(output);
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("run_chunks completed every chunk")
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

/// Conversion of owned collections into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Producer backing the iterator.
    type Producer: Producer<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Producer>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Producer = VecProducer<T>;
    fn into_par_iter(self) -> ParIter<Self::Producer> {
        ParIter {
            producer: VecProducer { items: self },
        }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Producer = RangeProducer<usize>;
    fn into_par_iter(self) -> ParIter<Self::Producer> {
        ParIter {
            producer: RangeProducer {
                start: self.start,
                end: self.end.max(self.start),
            },
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u32> {
    type Item = u32;
    type Producer = RangeProducer<u32>;
    fn into_par_iter(self) -> ParIter<Self::Producer> {
        ParIter {
            producer: RangeProducer {
                start: self.start,
                end: self.end.max(self.start),
            },
        }
    }
}

/// Borrowing conversion (`par_iter`) for slice-like collections.
pub trait IntoParallelRefIterator<'data> {
    /// Borrowed element type.
    type Item: Send + 'data;
    /// Producer backing the iterator.
    type Producer: Producer<Item = Self::Item>;
    /// Returns a parallel iterator over borrowed elements.
    fn par_iter(&'data self) -> ParIter<Self::Producer>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Producer = SliceProducer<'data, T>;
    fn par_iter(&'data self) -> ParIter<Self::Producer> {
        ParIter {
            producer: SliceProducer { slice: self },
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Producer = SliceProducer<'data, T>;
    fn par_iter(&'data self) -> ParIter<Self::Producer> {
        ParIter {
            producer: SliceProducer { slice: self },
        }
    }
}

/// Mutably borrowing conversion (`par_iter_mut`) for slice-like collections.
pub trait IntoParallelRefMutIterator<'data> {
    /// Mutably borrowed element type.
    type Item: Send + 'data;
    /// Producer backing the iterator.
    type Producer: Producer<Item = Self::Item>;
    /// Returns a parallel iterator over mutably borrowed elements.
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Producer>;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Producer = SliceMutProducer<'data, T>;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Producer> {
        ParIter {
            producer: SliceMutProducer { slice: self },
        }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Producer = SliceMutProducer<'data, T>;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Producer> {
        ParIter {
            producer: SliceMutProducer { slice: self },
        }
    }
}

/// The usual glob import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_matches_serial() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn fold_then_reduce() {
        let v: Vec<usize> = (0..100).collect();
        let sum = v
            .par_iter()
            .fold(Vec::new, |mut acc, &x| {
                acc.push(x);
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(sum.len(), 100);
        assert_eq!(sum.iter().sum::<usize>(), 4950);
        // Chunk recombination is order-preserving, so the spliced buffers
        // reproduce the input order exactly.
        assert_eq!(sum, (0..100).collect::<Vec<usize>>());
    }

    #[test]
    fn reduce_with_identity() {
        let v = vec![3usize, 5, 7];
        assert_eq!(v.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b), 15);
        let empty: Vec<usize> = Vec::new();
        assert_eq!(empty.par_iter().map(|&x| x).reduce(|| 9, |a, b| a + b), 9);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0usize..5).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn collect_results() {
        let v = vec![1i32, -2, 3];
        let res: Vec<Result<i32, String>> = v
            .par_iter()
            .map(|&x| if x > 0 { Ok(x) } else { Err("neg".to_string()) })
            .collect();
        assert!(res[0].is_ok() && res[1].is_err() && res[2].is_ok());
    }

    #[test]
    fn collect_preserves_input_order_on_large_inputs() {
        // Large enough to split into many chunks on any pool size.
        let expected: Vec<usize> = (0..10_000).map(|x| x * 3).collect();
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let got: Vec<usize> =
            pool.install(|| (0usize..10_000).into_par_iter().map(|x| x * 3).collect());
        assert_eq!(got, expected);
    }

    #[test]
    fn results_are_identical_across_pool_sizes() {
        let input: Vec<u64> = (0..5_000).collect();
        let run = || -> (u64, usize, Vec<u64>) {
            let sum: u64 = input.par_iter().map(|&x| x * x).sum();
            let count = input.par_iter().filter(|&&x| x % 3 == 0).count();
            let evens: Vec<u64> = input
                .par_iter()
                .filter_map(|&x| (x % 2 == 0).then_some(x))
                .collect();
            (sum, count, evens)
        };
        let baseline = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(run);
        for threads in [2, 3, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            assert_eq!(pool.install(run), baseline, "{threads} threads");
        }
    }

    #[test]
    fn empty_inputs_are_fine_on_every_terminal() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(empty.par_iter().map(|&x| x).collect::<Vec<u32>>(), vec![]);
        assert_eq!(empty.par_iter().map(|&x| x).sum::<u32>(), 0);
        assert_eq!(empty.par_iter().count(), 0);
        empty
            .par_iter()
            .for_each(|_| panic!("no elements to visit"));
        #[allow(clippy::reversed_empty_ranges)]
        let backwards: Vec<u32> = (5u32..3).into_par_iter().collect();
        assert!(backwards.is_empty());
    }

    #[test]
    fn for_each_visits_every_element_exactly_once() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let hits: Vec<AtomicUsize> = (0..2_000).map(|_| AtomicUsize::new(0)).collect();
        pool.install(|| {
            (0usize..2_000).into_par_iter().for_each(|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            })
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_iter_mut_updates_in_place() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut v: Vec<usize> = (0..1_000).collect();
        pool.install(|| v.par_iter_mut().for_each(|x| *x *= 2));
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let strings: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let lengths: Vec<usize> =
            pool.install(|| strings.into_par_iter().map(|s| s.len()).collect());
        assert_eq!(lengths.len(), 100);
        assert_eq!(lengths[10], 2);
    }

    #[test]
    fn panics_propagate_and_leave_the_pool_serviceable() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0usize..1_000).into_par_iter().for_each(|i| {
                    if i == 777 {
                        panic!("boom at {i}");
                    }
                })
            })
        }));
        let payload = result.expect_err("the chunk panic must reach the caller");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("boom at 777"), "payload: {message:?}");
        // The pool keeps working after delivering the panic.
        let sum: usize = pool.install(|| (0usize..100).into_par_iter().sum());
        assert_eq!(sum, 4950);
    }

    #[test]
    fn nested_par_iter_does_not_deadlock() {
        // Every outer chunk issues an inner parallel operation on the same
        // pool; caller participation guarantees progress even when all
        // workers are parked inside outer chunks.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let totals: Vec<usize> = pool.install(|| {
            (0usize..16)
                .into_par_iter()
                .map(|i| (0usize..200).into_par_iter().map(|j| i + j).sum())
                .collect()
        });
        let expected: Vec<usize> = (0..16).map(|i| (0..200).map(|j| i + j).sum()).collect();
        assert_eq!(totals, expected);
    }

    #[test]
    fn install_scopes_the_ambient_pool_and_restores_it() {
        let two = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let eight = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let ambient = current_num_threads();
        two.install(|| {
            assert_eq!(current_num_threads(), 2);
            eight.install(|| assert_eq!(current_num_threads(), 8));
            assert_eq!(current_num_threads(), 2);
        });
        assert_eq!(current_num_threads(), ambient);
        assert_eq!(two.current_num_threads(), 2);
    }

    #[test]
    fn zero_thread_request_falls_back_to_the_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn spawn_runs_detached_jobs_to_completion() {
        // Multi-thread pool: jobs go through the pool's queue.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        pool.install(|| {
            for i in 0..32usize {
                let tx = tx.clone();
                spawn(move || tx.send(i).unwrap());
            }
        });
        let mut got: Vec<usize> = (0..32).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<usize>>());

        // One-thread pool has zero workers: spawn must still make progress
        // (dedicated-thread fallback), not enqueue into a drainless queue.
        let one = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        one.install(|| spawn(move || tx.send(42usize).unwrap()));
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)), Ok(42));
    }

    #[test]
    fn reduce_is_deterministic_for_noncommutative_ops() {
        // String concatenation is order-sensitive: identical output across
        // pool sizes proves chunk partials are combined in input order.
        let words: Vec<String> = (0..500).map(|i| format!("w{i};")).collect();
        let concat = |pool: &ThreadPool| -> String {
            pool.install(|| {
                words
                    .par_iter()
                    .map(|w| w.clone())
                    .reduce(String::new, |a, b| a + &b)
            })
        };
        let one = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let four = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(concat(&one), concat(&four));
    }
}
