//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this crate mirrors
//! the subset of rayon's parallel-iterator API that the workspace uses —
//! `par_iter()` / `into_par_iter()` with `map`, `filter`, `filter_map`,
//! `fold`, `reduce`, `for_each`, `sum` and `collect` — executing everything
//! *sequentially* on the calling thread.
//!
//! All algorithms in this workspace are written so their results are
//! identical regardless of execution order (discoveries within a BFS level
//! are order-independent, per-root searches are independent, matrix rows are
//! independent reductions), so sequential execution is observationally
//! equivalent; only wall-clock parallel speed-ups are lost. Swapping the real
//! rayon back in is a one-line change in each `Cargo.toml` once a registry
//! is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A "parallel" iterator: a thin wrapper around a sequential iterator that
/// exposes rayon's combinator names.
pub struct ParIter<I: Iterator> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    /// Applies `f` to every element (rayon: `ParallelIterator::map`).
    pub fn map<F, R>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    /// Keeps elements satisfying `f` (rayon: `ParallelIterator::filter`).
    pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParIter {
            inner: self.inner.filter(f),
        }
    }

    /// Filter-and-map in one pass (rayon: `ParallelIterator::filter_map`).
    pub fn filter_map<F, R>(self, f: F) -> ParIter<std::iter::FilterMap<I, F>>
    where
        F: FnMut(I::Item) -> Option<R>,
    {
        ParIter {
            inner: self.inner.filter_map(f),
        }
    }

    /// Rayon's split-wise fold: produces one accumulator per split. The
    /// sequential stand-in has exactly one split, so this yields a
    /// single-element iterator holding the full fold.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: FnOnce() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        let acc = self.inner.fold(identity(), fold_op);
        ParIter {
            inner: std::iter::once(acc),
        }
    }

    /// Reduces all elements with `op`, starting from `identity()` (rayon:
    /// `ParallelIterator::reduce`).
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        ID: FnOnce() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.inner.fold(identity(), op)
    }

    /// Runs `f` on every element (rayon: `ParallelIterator::for_each`).
    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.inner.for_each(f)
    }

    /// Sums the elements (rayon: `ParallelIterator::sum`).
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.inner.sum()
    }

    /// Collects into any `FromIterator` container (rayon:
    /// `ParallelIterator::collect`, including the `FromParallelIterator`
    /// impls for `Vec<T>` and `Vec<Result<T, E>>`).
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.inner.collect()
    }

    /// Returns the number of elements (rayon: `ParallelIterator::count`).
    pub fn count(self) -> usize {
        self.inner.count()
    }
}

/// Conversion of owned collections into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = std::ops::Range<usize>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

impl IntoParallelIterator for std::ops::Range<u32> {
    type Item = u32;
    type Iter = std::ops::Range<u32>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

/// Borrowing conversion (`par_iter`) for slice-like collections.
pub trait IntoParallelRefIterator<'data> {
    /// Borrowed element type.
    type Item: 'data;
    /// Underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Returns a parallel iterator over borrowed elements.
    fn par_iter(&'data self) -> ParIter<Self::Iter>;
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;
    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;
    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

/// The usual glob import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_serial() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn fold_then_reduce() {
        let v: Vec<usize> = (0..100).collect();
        let sum = v
            .par_iter()
            .fold(Vec::new, |mut acc, &x| {
                acc.push(x);
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(sum.len(), 100);
        assert_eq!(sum.iter().sum::<usize>(), 4950);
    }

    #[test]
    fn reduce_with_identity() {
        let v = vec![3usize, 5, 7];
        assert_eq!(v.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b), 15);
        let empty: Vec<usize> = Vec::new();
        assert_eq!(empty.par_iter().map(|&x| x).reduce(|| 9, |a, b| a + b), 9);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0usize..5).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn collect_results() {
        let v = vec![1i32, -2, 3];
        let res: Vec<Result<i32, String>> = v
            .par_iter()
            .map(|&x| if x > 0 { Ok(x) } else { Err("neg".to_string()) })
            .collect();
        assert!(res[0].is_ok() && res[1].is_err() && res[2].is_ok());
    }
}
