//! The executor behind the parallel iterators: a lazily-initialized global
//! pool of `std::thread` workers plus optional scoped pools
//! ([`ThreadPoolBuilder`]), with a chunked self-scheduling work queue.
//!
//! ## Execution model
//!
//! A bulk parallel operation is split into `chunks` index ranges. The chunks
//! are *self-scheduled*: every participating thread claims the next unclaimed
//! chunk index with one `fetch_add` until the supply is exhausted, which
//! load-balances uneven chunks exactly like a work-stealing deque would for
//! this fan-out shape, without per-worker deques. The **calling thread always
//! participates** — it claims chunks like any worker and only then blocks on
//! the completion latch — so a parallel operation issued from *inside* a pool
//! worker (nested `par_iter`) can never deadlock: the nested caller drains
//! its own chunks even if every other worker is busy.
//!
//! ## Pools
//!
//! * The **global pool** is created lazily on first use with
//!   `RAYON_NUM_THREADS` (if set to a positive integer) or
//!   [`std::thread::available_parallelism`] threads. A pool of `n` threads
//!   spawns `n - 1` workers; the caller is the `n`-th.
//! * [`ThreadPoolBuilder::build`] creates an independent pool;
//!   [`ThreadPool::install`] runs a closure with that pool as the ambient
//!   executor for every `par_*` call it makes (thread-locally, so concurrent
//!   installs do not interfere). Workers are joined on drop.
//!
//! ## Panic propagation
//!
//! A panicking chunk marks the operation aborted (remaining chunks are
//! skipped), the first panic payload is stored, and the latch still counts
//! every chunk so the caller never hangs; the payload is re-raised on the
//! calling thread via [`std::panic::resume_unwind`]. Workers survive payload
//! delivery and keep serving later operations.
//!
//! ## Why the one `unsafe` block is sound
//!
//! Worker jobs must be `'static`, but parallel operations borrow the caller's
//! stack (producers, result slots, user closures). [`run_chunks`] erases the
//! chunk closure's lifetime and hands workers an `Arc`'d task referencing it.
//! Soundness rests on a latch invariant, documented at the `unsafe` site:
//! the closure is only ever invoked for chunk indices `< chunks`, and
//! `run_chunks` does not return (or unwind) before all `chunks` completions
//! are counted — so no thread can touch the borrow after it expires. Jobs
//! that start late find no chunk left and return without touching the
//! closure.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// A unit of queued work: claim chunks from one [`ActiveTask`] until dry.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolState {
    queue: Mutex<Queue>,
    work_available: Condvar,
}

/// A cheap handle to a pool: the shared queue plus the pool's thread budget.
#[derive(Clone)]
pub(crate) struct PoolHandle {
    state: Arc<PoolState>,
    num_threads: usize,
}

impl PoolHandle {
    /// Total threads this pool schedules across, caller included.
    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Mutex lock that shrugs off poisoning: every mutex in this crate (queue,
/// latch, chunk and result slots) protects state mutated by single
/// push/pop/take/increment operations, so a panicking thread can never
/// leave it inconsistent.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn new_state() -> Arc<PoolState> {
    Arc::new(PoolState {
        queue: Mutex::new(Queue {
            jobs: VecDeque::new(),
            shutdown: false,
        }),
        work_available: Condvar::new(),
    })
}

fn spawn_workers(handle: &PoolHandle, count: usize) -> Vec<JoinHandle<()>> {
    (0..count)
        .map(|i| {
            let worker = handle.clone();
            std::thread::Builder::new()
                .name(format!("egraph-rayon-{i}"))
                .spawn(move || worker_loop(worker))
                .expect("spawn pool worker thread")
        })
        .collect()
}

fn worker_loop(handle: PoolHandle) {
    // Nested `par_*` calls issued from inside a job schedule onto this
    // worker's own pool.
    CURRENT_POOL.with(|current| *current.borrow_mut() = Some(handle.clone()));
    loop {
        let job = {
            let mut queue = lock(&handle.state.queue);
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break Some(job);
                }
                if queue.shutdown {
                    break None;
                }
                queue = handle
                    .state
                    .work_available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            // Jobs contain their own panic handling; this catch is a
            // backstop so a worker can never die and silently shrink the
            // pool.
            Some(job) => drop(catch_unwind(AssertUnwindSafe(job))),
            None => return,
        }
    }
}

thread_local! {
    static CURRENT_POOL: std::cell::RefCell<Option<PoolHandle>> =
        const { std::cell::RefCell::new(None) };
}

/// The pool the current thread's `par_*` calls execute on: an installed or
/// worker-local pool if one is active, the global pool otherwise.
pub(crate) fn current_handle() -> PoolHandle {
    CURRENT_POOL
        .with(|current| current.borrow().clone())
        .unwrap_or_else(|| global_handle().clone())
}

fn global_handle() -> &'static PoolHandle {
    static GLOBAL: OnceLock<PoolHandle> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let num_threads = default_num_threads();
        let handle = PoolHandle {
            state: new_state(),
            num_threads,
        };
        // The caller of every parallel operation participates, so `n`
        // scheduling threads need `n - 1` workers. The global pool's workers
        // are never joined; they park on the condvar between operations.
        spawn_workers(&handle, num_threads.saturating_sub(1));
        handle
    })
}

/// `RAYON_NUM_THREADS` if set to a positive integer, else the machine's
/// available parallelism (1 if that cannot be determined).
fn default_num_threads() -> usize {
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(parsed) = value.trim().parse::<usize>() {
            if parsed > 0 {
                return parsed;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of threads the ambient pool schedules across (rayon's
/// `current_num_threads`). `1` means `par_*` calls run sequentially on the
/// caller.
pub fn current_num_threads() -> usize {
    current_handle().num_threads()
}

/// Fire-and-forget execution on the ambient pool (rayon's `spawn`): `f`
/// runs on some pool worker, with no completion handle — callers that need
/// a result arrange their own channel back.
///
/// A 1-thread pool has **zero** workers (the would-be caller is its only
/// scheduling thread), and unlike a bulk `par_*` operation the spawning
/// thread does not participate — nothing would ever run the job. That
/// configuration falls back to a dedicated `std::thread`, preserving
/// rayon's semantics (`spawn` always eventually runs `f`) at every
/// `RAYON_NUM_THREADS` setting.
pub fn spawn<F>(f: F)
where
    F: FnOnce() + Send + 'static,
{
    let handle = current_handle();
    if handle.num_threads() <= 1 {
        std::thread::spawn(f);
        return;
    }
    {
        let mut queue = lock(&handle.state.queue);
        queue.jobs.push_back(Box::new(f));
    }
    handle.state.work_available.notify_one();
}

// ---------------------------------------------------------------------------
// Bulk execution
// ---------------------------------------------------------------------------

/// One in-flight bulk operation: `chunks` indices claimed by `fetch_add`,
/// completion counted under a latch the caller waits on.
struct ActiveTask {
    /// The chunk body, lifetime-erased. Valid until the latch releases; see
    /// the safety argument in [`run_chunks`].
    body: &'static (dyn Fn(usize) + Sync),
    chunks: usize,
    next: AtomicUsize,
    /// Set on the first panic: remaining chunks are skipped (but still
    /// counted) so the operation fails fast without hanging the latch.
    aborted: AtomicBool,
    completed: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl ActiveTask {
    /// Claims and runs chunks until none remain. Called by workers and by
    /// the issuing thread alike.
    fn participate(&self) {
        loop {
            let index = self.next.fetch_add(1, Ordering::Relaxed);
            if index >= self.chunks {
                return;
            }
            if !self.aborted.load(Ordering::Relaxed) {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.body)(index))) {
                    self.aborted.store(true, Ordering::Relaxed);
                    let mut slot = lock(&self.panic);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            let mut completed = lock(&self.completed);
            *completed += 1;
            if *completed == self.chunks {
                self.all_done.notify_all();
            }
        }
    }
}

/// Runs `body(0..chunks)` across the pool, blocking until every chunk has
/// completed and re-raising the first panic. `chunks <= 1` or a 1-thread
/// pool runs inline with zero scheduling overhead.
pub(crate) fn run_chunks(handle: &PoolHandle, chunks: usize, body: &(dyn Fn(usize) + Sync)) {
    if chunks <= 1 || handle.num_threads <= 1 {
        for index in 0..chunks {
            body(index);
        }
        return;
    }

    // SAFETY (lifetime erasure): `task.body` borrows the caller's stack, and
    // worker jobs holding `Arc<ActiveTask>` may outlive this call. The borrow
    // is only dereferenced inside `participate` for claimed indices
    // `< chunks`; every such claim is counted exactly once into `completed`,
    // and this function does not return — on success or unwind — until
    // `completed == chunks`. A job that runs after that point claims an
    // index `>= chunks` and returns without touching `body`. Hence no thread
    // dereferences the borrow after `run_chunks` returns, which is the whole
    // requirement for extending the lifetime.
    #[allow(unsafe_code)]
    let body: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(body) };
    let task = Arc::new(ActiveTask {
        body,
        chunks,
        next: AtomicUsize::new(0),
        aborted: AtomicBool::new(false),
        completed: Mutex::new(0),
        all_done: Condvar::new(),
        panic: Mutex::new(None),
    });

    // One helper job per thread that could usefully claim a chunk beyond the
    // participating caller.
    let helpers = (handle.num_threads - 1).min(chunks - 1);
    {
        let mut queue = lock(&handle.state.queue);
        for _ in 0..helpers {
            let task = Arc::clone(&task);
            queue.jobs.push_back(Box::new(move || task.participate()));
        }
    }
    handle.state.work_available.notify_all();

    // The caller works too (this is what makes nested calls deadlock-free),
    // then waits for any chunks still running on helpers.
    task.participate();
    {
        let mut completed = lock(&task.completed);
        while *completed < task.chunks {
            completed = task
                .all_done
                .wait(completed)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
    let payload = lock(&task.panic).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

// ---------------------------------------------------------------------------
// Configurable pools (rayon's ThreadPoolBuilder / ThreadPool surface)
// ---------------------------------------------------------------------------

/// Builder for an independent [`ThreadPool`] (rayon: `ThreadPoolBuilder`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (thread count from the environment).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool's thread count. `0` (rayon's convention) and unset both
    /// mean the environment default. `1` makes every operation run
    /// sequentially on the calling thread.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = if num_threads == 0 {
            None
        } else {
            Some(num_threads)
        };
        self
    }

    /// Builds the pool, spawning its workers eagerly.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let num_threads = self.num_threads.unwrap_or_else(default_num_threads);
        let handle = PoolHandle {
            state: new_state(),
            num_threads,
        };
        let workers = spawn_workers(&handle, num_threads.saturating_sub(1));
        Ok(ThreadPool { handle, workers })
    }
}

/// Error from [`ThreadPoolBuilder::build`]. Kept for rayon API parity; the
/// in-tree builder only fails by panicking on thread-spawn exhaustion.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// An independent pool of workers (rayon: `ThreadPool`). Dropping the pool
/// shuts its workers down and joins them.
pub struct ThreadPool {
    handle: PoolHandle,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.handle.num_threads)
            .finish()
    }
}

impl ThreadPool {
    /// Runs `op` with this pool as the ambient executor: every `par_*` call
    /// `op` makes (on this thread) schedules onto this pool instead of the
    /// global one. Unlike real rayon, `op` itself runs on the calling thread
    /// — the calling thread is one of the pool's scheduling threads — which
    /// changes no observable result.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        CURRENT_POOL.with(|current| {
            let previous = current.borrow_mut().replace(self.handle.clone());
            // Restore the previous ambient pool even if `op` unwinds, so a
            // caught panic cannot leave the thread pinned to this pool.
            struct Restore<'a>(
                &'a std::cell::RefCell<Option<PoolHandle>>,
                Option<PoolHandle>,
            );
            impl Drop for Restore<'_> {
                fn drop(&mut self) {
                    *self.0.borrow_mut() = self.1.take();
                }
            }
            let _restore = Restore(current, previous);
            op()
        })
    }

    /// This pool's thread count (caller included).
    pub fn current_num_threads(&self) -> usize {
        self.handle.num_threads
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut queue = lock(&self.handle.state.queue);
            queue.shutdown = true;
            // Jobs still queued are stragglers of completed operations (the
            // issuing thread has already drained their chunks); workers exit
            // without running them and dropping them is sound — destroying a
            // job only drops its `Arc<ActiveTask>`.
            queue.jobs.clear();
        }
        self.handle.state.work_available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
