//! Parallel sparse and dense matrix–vector kernels (rayon).
//!
//! The BFS power iteration of Algorithm 2 spends essentially all of its time
//! in transposed matrix–vector products. These kernels parallelise the
//! products over output elements with rayon; they produce bit-identical
//! results to the serial kernels because each output element is an
//! independent reduction (no concurrent accumulation into shared slots).

use rayon::prelude::*;

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;

/// Minimum number of output rows before the parallel path is taken; tiny
/// matrices are faster serial.
const PAR_THRESHOLD: usize = 512;

/// Parallel `y = A x` for CSR (row-parallel: each row is a dot product).
pub fn par_csr_matvec(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), a.cols(), "dimension mismatch in par_csr_matvec");
    if a.rows() < PAR_THRESHOLD {
        return a.matvec(x);
    }
    (0..a.rows())
        .into_par_iter()
        .map(|r| {
            let (cols, vals) = a.row(r);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            acc
        })
        .collect()
}

/// Parallel `y = Aᵀ x` for CSC (column-parallel: each output component is a
/// dot product of one column with `x`).
pub fn par_csc_transpose_matvec(a: &CscMatrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(
        x.len(),
        a.rows(),
        "dimension mismatch in par_csc_transpose_matvec"
    );
    if a.cols() < PAR_THRESHOLD {
        return a.transpose_matvec(x);
    }
    (0..a.cols())
        .into_par_iter()
        .map(|c| {
            let (rows, vals) = a.col(c);
            let mut acc = 0.0;
            for (&r, &v) in rows.iter().zip(vals) {
                acc += v * x[r as usize];
            }
            acc
        })
        .collect()
}

/// Parallel dense `y = A x` (row-parallel).
pub fn par_dense_matvec(a: &DenseMatrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), a.cols(), "dimension mismatch in par_dense_matvec");
    if a.rows() < PAR_THRESHOLD {
        return a.matvec(x);
    }
    (0..a.rows())
        .into_par_iter()
        .map(|r| {
            a.row(r)
                .iter()
                .zip(x.iter())
                .map(|(&av, &xv)| av * xv)
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn random_sparse(n: usize, nnz: usize, seed: u64) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(n, n, nnz);
        let mut state = seed;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..nnz {
            let r = (next() % n as u64) as usize;
            let c = (next() % n as u64) as usize;
            let v = ((next() % 1000) as f64) / 100.0;
            coo.push(r, c, v);
        }
        coo
    }

    fn random_vector(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state % 2000) as f64 - 1000.0) / 250.0
            })
            .collect()
    }

    #[test]
    fn parallel_csr_matches_serial_below_and_above_threshold() {
        for &n in &[64usize, 1024] {
            let coo = random_sparse(n, 6 * n, 0xABCD_0001);
            let a = coo.to_csr();
            let x = random_vector(n, 42);
            let serial = a.matvec(&x);
            let parallel = par_csr_matvec(&a, &x);
            assert_eq!(serial, parallel, "n = {n}");
        }
    }

    #[test]
    fn parallel_csc_transpose_matches_serial() {
        for &n in &[64usize, 1024] {
            let coo = random_sparse(n, 6 * n, 0xABCD_0002);
            let a = coo.to_csc();
            let x = random_vector(n, 7);
            assert_eq!(
                a.transpose_matvec(&x),
                par_csc_transpose_matvec(&a, &x),
                "n = {n}"
            );
        }
    }

    #[test]
    fn parallel_dense_matches_serial() {
        let n = 600usize;
        let coo = random_sparse(n, 3 * n, 0xABCD_0003);
        let a = coo.to_dense();
        let x = random_vector(n, 9);
        assert_eq!(a.matvec(&x), par_dense_matvec(&a, &x));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn parallel_kernels_validate_dimensions() {
        let a = CooMatrix::new(4, 4).to_csr();
        let _ = par_csr_matvec(&a, &[1.0, 2.0]);
    }
}
