//! The `⊙` (odot) matrix–vector product of Section III-B.
//!
//! The paper introduces a new product to express "advance in time while
//! staying on the same (active) node":
//!
//! ```text
//! Aᵀ ⊙ b = b   if Aᵀ b ≠ 0 or A b ≠ 0,
//!          0   otherwise.
//! ```
//!
//! The two conditions test whether `b` touches the *left-active* or
//! *right-active* nodes of the snapshot whose adjacency matrix is `A`. For an
//! elementary vector `b = e_k` the definition reads "keep `e_k` iff node `k`
//! is active in this snapshot", and that componentwise reading is what the
//! off-diagonal blocks `M[ti,tj]` implement (they additionally require
//! activeness at the *destination* time). This module provides
//!
//! * [`odot_literal`] — the vector-level definition exactly as printed;
//! * [`odot_componentwise`] — the per-component masking that the block
//!   matrix `M_n` encodes and that the algebraic BFS uses;
//! * [`causal_apply`] — `M[ti,tj]ᵀ b` given the two activeness masks.
//!
//! For elementary vectors the literal and componentwise forms agree, which is
//! tested below; for general vectors the componentwise form is the faithful
//! translation of the causal edge set `E′`.

use crate::csc::CscMatrix;

/// The activeness mask of a snapshot derived from its adjacency block: a node
/// is active iff its row or its column in `A[t]` is non-empty. This is
/// exactly the union `V̂[t]_L ∪ V̂[t]_R` from the proof of Theorem 1, and the
/// per-block cost is `O(|V[t]| + |E[t]|)` as charged in Theorem 6.
pub fn activeness_mask(block: &CscMatrix) -> Vec<bool> {
    let rows = block.nonempty_rows();
    let cols = block.nonempty_cols();
    rows.iter()
        .zip(cols.iter())
        .map(|(&r, &c)| r || c)
        .collect()
}

/// The literal `⊙` product of the paper: returns `b` unchanged if `Aᵀ b ≠ 0`
/// or `A b ≠ 0`, and the zero vector otherwise.
pub fn odot_literal(block: &CscMatrix, b: &[f64]) -> Vec<f64> {
    let at_b = block.transpose_matvec(b);
    if at_b.iter().any(|&x| x != 0.0) {
        return b.to_vec();
    }
    let a_b = block.matvec(b);
    if a_b.iter().any(|&x| x != 0.0) {
        return b.to_vec();
    }
    vec![0.0; b.len()]
}

/// The componentwise `⊙` product: keeps `b[v]` iff node `v` is active in the
/// snapshot represented by `block`, zeroing every other component. Equals
/// `diag(activeness_mask)ᵀ · b`.
pub fn odot_componentwise(block: &CscMatrix, b: &[f64]) -> Vec<f64> {
    let mask = activeness_mask(block);
    mask_apply(&mask, b)
}

/// Applies an activeness mask to a vector (`y[v] = b[v]` if `mask[v]`, else 0).
pub fn mask_apply(mask: &[bool], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(mask.len(), b.len());
    mask.iter()
        .zip(b.iter())
        .map(|(&m, &x)| if m { x } else { 0.0 })
        .collect()
}

/// `M[ti,tj]ᵀ b`: keeps the components of `b` whose node is active at *both*
/// snapshots. `mask_i` and `mask_j` are the activeness masks of the two
/// snapshots.
pub fn causal_apply(mask_i: &[bool], mask_j: &[bool], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(mask_i.len(), b.len());
    debug_assert_eq!(mask_j.len(), b.len());
    mask_i
        .iter()
        .zip(mask_j.iter())
        .zip(b.iter())
        .map(|((&a, &c), &x)| if a && c { x } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockAdjacency;
    use egraph_core::examples::paper_figure1;
    use egraph_core::ids::TimeIndex;

    fn unit(n: usize, k: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        v[k] = 1.0;
        v
    }

    #[test]
    fn activeness_masks_from_blocks_match_the_graph() {
        let g = paper_figure1();
        let blocks = BlockAdjacency::from_graph(&g);
        for t in 0..3u32 {
            let mask = activeness_mask(blocks.block(TimeIndex(t)));
            assert_eq!(mask, blocks.active_mask(TimeIndex(t)), "snapshot {t}");
        }
    }

    #[test]
    fn paper_forward_neighbor_computation_for_node_1_t1() {
        // Section III-B computes ⟨(A[1])ᵀ e1, (A[2])ᵀ ⊙ e1, (A[3])ᵀ ⊙ e1⟩
        // = ⟨e2, e1, 0⟩ for the Figure 1 graph.
        let g = paper_figure1();
        let blocks = BlockAdjacency::from_graph(&g);
        let e1 = unit(3, 0);
        let first = blocks.block(TimeIndex(0)).transpose_matvec(&e1);
        assert_eq!(first, unit(3, 1));
        let second = odot_literal(blocks.block(TimeIndex(1)), &e1);
        assert_eq!(second, e1);
        let third = odot_literal(blocks.block(TimeIndex(2)), &e1);
        assert_eq!(third, vec![0.0; 3]);
    }

    #[test]
    fn literal_and_componentwise_agree_on_elementary_vectors() {
        let g = paper_figure1();
        let blocks = BlockAdjacency::from_graph(&g);
        for t in 0..3u32 {
            let block = blocks.block(TimeIndex(t));
            for k in 0..3 {
                let e = unit(3, k);
                assert_eq!(
                    odot_literal(block, &e),
                    odot_componentwise(block, &e),
                    "snapshot {t}, node {k}"
                );
            }
        }
    }

    #[test]
    fn componentwise_masks_mixed_vectors_per_node() {
        let g = paper_figure1();
        let blocks = BlockAdjacency::from_graph(&g);
        // At t2, nodes 0 and 2 are active, node 1 is not.
        let b = vec![1.0, 2.0, 3.0];
        let masked = odot_componentwise(blocks.block(TimeIndex(1)), &b);
        assert_eq!(masked, vec![1.0, 0.0, 3.0]);
        // The literal form keeps the whole vector because Aᵀ b ≠ 0 — this is
        // exactly the place where the componentwise reading is needed.
        assert_eq!(odot_literal(blocks.block(TimeIndex(1)), &b), b);
    }

    #[test]
    fn causal_apply_requires_activeness_at_both_times() {
        let g = paper_figure1();
        let blocks = BlockAdjacency::from_graph(&g);
        let m1 = blocks.active_mask(TimeIndex(0)).to_vec();
        let m2 = blocks.active_mask(TimeIndex(1)).to_vec();
        // Nodes 0,1 active at t1; nodes 0,2 active at t2 ⇒ only node 0 passes.
        let b = vec![5.0, 6.0, 7.0];
        assert_eq!(causal_apply(&m1, &m2, &b), vec![5.0, 0.0, 0.0]);
        // Consistent with the dense causal block of Equation (4).
        let m = blocks.causal_block(TimeIndex(0), TimeIndex(1));
        let dense_result = m.transpose_matvec(&b);
        assert_eq!(causal_apply(&m1, &m2, &b), dense_result);
    }

    #[test]
    fn mask_apply_zeroes_inactive_components() {
        assert_eq!(
            mask_apply(&[true, false, true], &[1.0, 2.0, 3.0]),
            vec![1.0, 0.0, 3.0]
        );
    }
}
