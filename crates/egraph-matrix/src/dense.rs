//! Dense row-major matrices.
//!
//! The algebraic formulation of Section III represents an evolving graph by
//! its block adjacency matrix and performs BFS by repeated matrix–vector
//! products. The dense representation is the simplest executable form of
//! that idea and the one Theorem 5 analyses (`O(k |V|²)`); it is also the
//! ground truth the sparse kernels are tested against.

/// A dense `rows × cols` matrix of `f64`, stored row-major.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        DenseMatrix { rows, cols, data }
    }

    /// Builds a 0/1 matrix from a list of `(row, col)` positions.
    pub fn from_ones(rows: usize, cols: usize, ones: &[(usize, usize)]) -> Self {
        let mut m = Self::zeros(rows, cols);
        for &(r, c) in ones {
            m.set(r, c, 1.0);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to element `(r, c)`.
    #[inline]
    pub fn add_to(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] += v;
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Number of structurally non-zero entries.
    pub fn count_nonzeros(&self) -> usize {
        self.data.iter().filter(|&&x| x != 0.0).count()
    }

    /// Whether every entry is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&x| x == 0.0)
    }

    /// Matrix–vector product `y = A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in matvec");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yr = acc;
        }
        y
    }

    /// Transposed matrix–vector product `y = Aᵀ x`.
    ///
    /// The BFS iteration of Algorithm 2 applies `A_nᵀ` repeatedly, so the
    /// transposed product is the hot kernel.
    pub fn transpose_matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch in transpose_matvec");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let row = self.row(r);
            for (c, &a) in row.iter().enumerate() {
                y[c] += a * xr;
            }
        }
        y
    }

    /// Matrix–matrix product `A · B`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in matmul");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.add_to(i, j, aik * other.get(k, j));
                }
            }
        }
        out
    }

    /// Matrix addition `A + B`.
    pub fn add(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// `A^k` (with `A^0 = I`); the matrix must be square.
    pub fn pow(&self, k: usize) -> DenseMatrix {
        assert_eq!(self.rows, self.cols, "pow requires a square matrix");
        let mut acc = DenseMatrix::identity(self.rows);
        for _ in 0..k {
            acc = acc.matmul(self);
        }
        acc
    }

    /// The transpose `Aᵀ`.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Whether the matrix is strictly upper triangular (used by the
    /// nilpotency lemma: acyclic snapshots give strictly upper triangular
    /// diagonal blocks once nodes are topologically ordered).
    pub fn is_strictly_upper_triangular(&self) -> bool {
        for r in 0..self.rows {
            for c in 0..=r.min(self.cols.saturating_sub(1)) {
                if c <= r && c < self.cols && self.get(r, c) != 0.0 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let i = DenseMatrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x), x);
        assert_eq!(i.transpose_matvec(&x), x);
    }

    #[test]
    fn matvec_matches_manual_computation() {
        let a = DenseMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
        assert_eq!(a.transpose_matvec(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_rejects_bad_dimensions() {
        let a = DenseMatrix::zeros(2, 3);
        let _ = a.matvec(&[1.0, 2.0]);
    }

    #[test]
    fn matmul_and_pow() {
        // Adjacency matrix of the path 0 -> 1 -> 2.
        let a = DenseMatrix::from_ones(3, 3, &[(0, 1), (1, 2)]);
        let a2 = a.pow(2);
        assert_eq!(a2.get(0, 2), 1.0);
        assert_eq!(a2.count_nonzeros(), 1);
        assert!(a.pow(3).is_zero());
        assert_eq!(a.pow(0), DenseMatrix::identity(3));
    }

    #[test]
    fn transpose_round_trips() {
        let a = DenseMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn add_sums_elementwise() {
        let a = DenseMatrix::from_ones(2, 2, &[(0, 0)]);
        let b = DenseMatrix::from_ones(2, 2, &[(0, 0), (1, 1)]);
        let s = a.add(&b);
        assert_eq!(s.get(0, 0), 2.0);
        assert_eq!(s.get(1, 1), 1.0);
    }

    #[test]
    fn strict_upper_triangular_detection() {
        let upper = DenseMatrix::from_ones(3, 3, &[(0, 1), (0, 2), (1, 2)]);
        assert!(upper.is_strictly_upper_triangular());
        let with_diag = DenseMatrix::from_ones(3, 3, &[(1, 1)]);
        assert!(!with_diag.is_strictly_upper_triangular());
        let lower = DenseMatrix::from_ones(3, 3, &[(2, 0)]);
        assert!(!lower.is_strictly_upper_triangular());
    }
}
