//! The block adjacency matrices `M_n` and `A_n` of Section III-C.
//!
//! An evolving graph with `N` nodes and `n` snapshots maps to an `Nn × Nn`
//! block upper-triangular matrix
//!
//! ```text
//!        ⎡ A[t1]  M[t1,t2] …  M[t1,tn] ⎤
//! M_n =  ⎢   0     A[t2]   …  M[t2,tn] ⎥
//!        ⎢   ⋮                    ⋮     ⎥
//!        ⎣   0       0     …   A[tn]   ⎦
//! ```
//!
//! whose diagonal blocks are the per-snapshot adjacency matrices (the static
//! edge set `Ẽ`) and whose off-diagonal blocks `M[ti,tj]` are diagonal 0/1
//! matrices marking nodes active at *both* times (the causal edge set `E′`).
//! Deleting the rows and columns of inactive temporal nodes yields `A_n`, the
//! adjacency matrix of the equivalent static graph `G` of Theorem 1.
//!
//! [`BlockAdjacency`] stores only what the algorithms need — one sparse CSC
//! block per snapshot plus per-snapshot activeness masks — and can expand
//! the dense `M_n` / `A_n` on demand for tests and small examples. The block
//! matrices "need never be instantiated for practical computations"
//! (Section III-C), and indeed [`crate::algebraic_bfs()`] works directly on
//! this implicit form.

use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::{NodeId, TemporalNode, TimeIndex};

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::dense::DenseMatrix;

/// Implicit block representation of `M_n`: per-snapshot sparse adjacency
/// blocks plus activeness masks.
#[derive(Clone, Debug)]
pub struct BlockAdjacency {
    num_nodes: usize,
    num_timestamps: usize,
    directed: bool,
    /// `blocks[t]` = the `N × N` adjacency matrix `A[t]` in CSC form.
    blocks: Vec<CscMatrix>,
    /// `active[t][v]` = whether `(v, t)` is an active temporal node.
    active: Vec<Vec<bool>>,
}

impl BlockAdjacency {
    /// Builds the block representation of an evolving graph. Undirected
    /// static edges are stored symmetrically (both `(u,v)` and `(v,u)`), as
    /// in the proof of Theorem 1.
    pub fn from_graph<G: EvolvingGraph>(graph: &G) -> Self {
        let n = graph.num_nodes();
        let n_t = graph.num_timestamps();
        let mut blocks = Vec::with_capacity(n_t);
        let mut active = vec![vec![false; n]; n_t];

        // Indexed on purpose: `v` addresses a column inside a closure that
        // selects the row by snapshot, so no single iterator owns the slot.
        #[allow(clippy::needless_range_loop)]
        for v in 0..n {
            let v_id = NodeId::from_index(v);
            graph.for_each_active_time(v_id, &mut |t| {
                active[t.index()][v] = true;
            });
        }

        for t in 0..n_t {
            let ti = TimeIndex::from_index(t);
            let mut coo = CooMatrix::new(n, n);
            for v in 0..n {
                let v_id = NodeId::from_index(v);
                graph.for_each_static_out(v_id, ti, &mut |w| {
                    coo.push_one(v, w.index());
                });
            }
            blocks.push(coo.to_csc());
        }

        BlockAdjacency {
            num_nodes: n,
            num_timestamps: n_t,
            directed: graph.is_directed(),
            blocks,
            active,
        }
    }

    /// Node universe size `N`.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of snapshots `n`.
    pub fn num_timestamps(&self) -> usize {
        self.num_timestamps
    }

    /// Whether the source graph was directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Dimension `Nn` of the full block matrix `M_n`.
    pub fn dimension(&self) -> usize {
        self.num_nodes * self.num_timestamps
    }

    /// The diagonal block `A[t]`.
    pub fn block(&self, t: TimeIndex) -> &CscMatrix {
        &self.blocks[t.index()]
    }

    /// The activeness mask of snapshot `t` (`mask[v]` = is `(v,t)` active).
    pub fn active_mask(&self, t: TimeIndex) -> &[bool] {
        &self.active[t.index()]
    }

    /// Whether `(v, t)` is active.
    pub fn is_active(&self, v: NodeId, t: TimeIndex) -> bool {
        self.active[t.index()][v.index()]
    }

    /// Number of active temporal nodes `|V|`.
    pub fn num_active_nodes(&self) -> usize {
        self.active
            .iter()
            .map(|mask| mask.iter().filter(|&&a| a).count())
            .sum()
    }

    /// Total stored entries over the diagonal blocks, i.e. `|Ẽ|` (directed)
    /// or `2|Ẽ|` (undirected).
    pub fn nnz_static(&self) -> usize {
        self.blocks.iter().map(|b| b.nnz()).sum()
    }

    /// The off-diagonal block `M[ti,tj]` as a dense matrix: a diagonal 0/1
    /// matrix with a one at `(v, v)` iff `v` is active at both times. Equation
    /// (4) of the paper is `causal_block(t1, t2)` of the Figure 1 graph.
    ///
    /// # Panics
    /// Panics if `ti >= tj` — causal blocks only exist above the diagonal.
    pub fn causal_block(&self, ti: TimeIndex, tj: TimeIndex) -> DenseMatrix {
        assert!(ti < tj, "causal blocks require ti < tj");
        let mut m = DenseMatrix::zeros(self.num_nodes, self.num_nodes);
        for v in 0..self.num_nodes {
            if self.active[ti.index()][v] && self.active[tj.index()][v] {
                m.set(v, v, 1.0);
            }
        }
        m
    }

    /// The temporal nodes in time-major order (the row/column ordering of
    /// `M_n`), active or not.
    pub fn all_temporal_nodes(&self) -> Vec<TemporalNode> {
        let mut out = Vec::with_capacity(self.dimension());
        for t in 0..self.num_timestamps {
            for v in 0..self.num_nodes {
                out.push(TemporalNode::from_raw(v as u32, t as u32));
            }
        }
        out
    }

    /// The active temporal nodes in time-major order — the row/column
    /// labelling of `A_n`.
    pub fn active_temporal_nodes(&self) -> Vec<TemporalNode> {
        let mut out = Vec::new();
        for t in 0..self.num_timestamps {
            for v in 0..self.num_nodes {
                if self.active[t][v] {
                    out.push(TemporalNode::from_raw(v as u32, t as u32));
                }
            }
        }
        out
    }

    /// Expands the full `Nn × Nn` matrix `M_n` (including inactive rows and
    /// columns). Quadratic in memory — intended for tests and small examples.
    pub fn to_dense_mn(&self) -> DenseMatrix {
        let n = self.num_nodes;
        let dim = self.dimension();
        let mut m = DenseMatrix::zeros(dim, dim);
        for t in 0..self.num_timestamps {
            // Diagonal block A[t].
            let block = &self.blocks[t];
            for c in 0..n {
                let (rows, vals) = block.col(c);
                for (&r, &v) in rows.iter().zip(vals) {
                    m.add_to(t * n + r as usize, t * n + c, v);
                }
            }
            // Off-diagonal causal blocks M[t, s] for s > t.
            for s in t + 1..self.num_timestamps {
                for v in 0..n {
                    if self.active[t][v] && self.active[s][v] {
                        m.set(t * n + v, s * n + v, 1.0);
                    }
                }
            }
        }
        m
    }

    /// Expands `A_n`: the dense adjacency matrix restricted to active
    /// temporal nodes, together with the temporal-node labelling of its rows
    /// and columns. This equals the adjacency matrix of
    /// [`egraph_core::static_equiv::EquivalentStaticGraph`].
    pub fn to_dense_an(&self) -> (DenseMatrix, Vec<TemporalNode>) {
        let labels = self.active_temporal_nodes();
        let index: std::collections::HashMap<TemporalNode, usize> =
            labels.iter().enumerate().map(|(i, &tn)| (tn, i)).collect();
        let mut m = DenseMatrix::zeros(labels.len(), labels.len());
        let n = self.num_nodes;
        let mn = self.to_dense_mn();
        for (i, &a) in labels.iter().enumerate() {
            for (j, &b) in labels.iter().enumerate() {
                let v = mn.get(a.flat_index(n), b.flat_index(n));
                if v != 0.0 {
                    m.set(i, j, v);
                }
            }
        }
        debug_assert_eq!(index.len(), labels.len());
        (m, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::examples::paper_figure1;
    use egraph_core::static_equiv::EquivalentStaticGraph;

    #[test]
    fn diagonal_blocks_match_the_per_time_adjacency_matrices() {
        let g = paper_figure1();
        let blocks = BlockAdjacency::from_graph(&g);
        // A[t1] has a single one at (1,2) (0-based (0,1)).
        assert_eq!(blocks.block(TimeIndex(0)).get(0, 1), 1.0);
        assert_eq!(blocks.block(TimeIndex(0)).nnz(), 1);
        assert_eq!(blocks.block(TimeIndex(1)).get(0, 2), 1.0);
        assert_eq!(blocks.block(TimeIndex(2)).get(1, 2), 1.0);
        assert_eq!(blocks.nnz_static(), 3);
    }

    #[test]
    fn causal_block_t1_t2_matches_equation_4() {
        let g = paper_figure1();
        let blocks = BlockAdjacency::from_graph(&g);
        // Equation (4): M[t1,t2] has a single one at (1,1) (0-based (0,0)).
        let m = blocks.causal_block(TimeIndex(0), TimeIndex(1));
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.count_nonzeros(), 1);
    }

    #[test]
    #[should_panic(expected = "ti < tj")]
    fn causal_block_rejects_non_increasing_times() {
        let g = paper_figure1();
        let blocks = BlockAdjacency::from_graph(&g);
        let _ = blocks.causal_block(TimeIndex(1), TimeIndex(1));
    }

    #[test]
    fn activeness_masks_match_the_graph() {
        let g = paper_figure1();
        let blocks = BlockAdjacency::from_graph(&g);
        assert!(blocks.is_active(NodeId(0), TimeIndex(0)));
        assert!(!blocks.is_active(NodeId(2), TimeIndex(0)));
        assert_eq!(blocks.num_active_nodes(), 6);
        assert_eq!(blocks.active_mask(TimeIndex(1)), &[true, false, true]);
    }

    #[test]
    fn dense_mn_is_block_upper_triangular() {
        let g = paper_figure1();
        let blocks = BlockAdjacency::from_graph(&g);
        let mn = blocks.to_dense_mn();
        assert_eq!(mn.rows(), 9);
        // Everything strictly below the diagonal blocks must be zero.
        for r in 0..9 {
            for c in 0..9 {
                let (rt, ct) = (r / 3, c / 3);
                if ct < rt {
                    assert_eq!(mn.get(r, c), 0.0, "below-diagonal entry ({r},{c})");
                }
            }
        }
        // Rows/columns of inactive temporal nodes are zero: (3,t1) is flat 2.
        assert!(mn.row(2).iter().all(|&x| x == 0.0));
        assert!((0..9).all(|r| mn.get(r, 2) == 0.0));
    }

    #[test]
    fn dense_an_matches_the_paper_a3_and_the_equivalent_static_graph() {
        let g = paper_figure1();
        let blocks = BlockAdjacency::from_graph(&g);
        let (an, labels) = blocks.to_dense_an();
        assert_eq!(an.rows(), 6);
        // The paper's A3 (Section III-C), in the same time-major ordering.
        let expected =
            DenseMatrix::from_ones(6, 6, &[(0, 1), (0, 2), (2, 3), (1, 4), (3, 5), (4, 5)]);
        assert_eq!(an, expected);
        // Cross-check against the Theorem 1 construction from egraph-core.
        let eq = EquivalentStaticGraph::build(&g);
        assert_eq!(labels, eq.temporal_nodes());
        for (i, _) in labels.iter().enumerate() {
            for (j, _) in labels.iter().enumerate() {
                let has = eq.static_graph().has_edge(i, j);
                assert_eq!(an.get(i, j) != 0.0, has, "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn undirected_graphs_store_symmetric_blocks() {
        let mut g = egraph_core::adjacency::AdjacencyListGraph::undirected_with_unit_times(3, 1);
        g.add_edge(NodeId(0), NodeId(2), TimeIndex(0)).unwrap();
        let blocks = BlockAdjacency::from_graph(&g);
        assert_eq!(blocks.block(TimeIndex(0)).get(0, 2), 1.0);
        assert_eq!(blocks.block(TimeIndex(0)).get(2, 0), 1.0);
        assert!(!blocks.is_directed());
    }
}
