//! Compressed sparse row (CSR) matrices.
//!
//! CSR is the natural layout for row-parallel sparse matrix–vector products
//! (each output element is an independent dot product), which is what the
//! rayon kernel in [`crate::parallel`] exploits.

use crate::dense::DenseMatrix;

/// A sparse `rows × cols` matrix in compressed sparse row format.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from triplets, summing duplicates.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f64)]) -> Self {
        // Sort a copy of the triplets by (row, col), merge duplicates, then
        // build the row pointer by counting entries per row.
        let mut sorted: Vec<(u32, u32, f64)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            if let Some(last) = merged.last_mut() {
                if last.0 == r && last.1 == c {
                    last.2 += v;
                    continue;
                }
            }
            merged.push((r, c, v));
        }

        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = merged.iter().map(|&(_, c, _)| c).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Whether row `r` stores no entries.
    pub fn row_is_empty(&self, r: usize) -> bool {
        self.row_ptr[r] == self.row_ptr[r + 1]
    }

    /// Element lookup (linear in the row length).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        cols.iter()
            .position(|&x| x as usize == c)
            .map(|i| vals[i])
            .unwrap_or(0.0)
    }

    /// Sparse matrix–vector product `y = A x` (the gaxpy kernel whose cost is
    /// `2 nnz` flops, as used in the proof of Theorem 6).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in matvec");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            *yr = acc;
        }
        y
    }

    /// Transposed product `y = Aᵀ x` computed by scattering rows.
    pub fn transpose_matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch in transpose_matvec");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                y[c as usize] += v * xr;
            }
        }
        y
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                m.add_to(r, c as usize, v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix {
        // [[0, 1, 0],
        //  [2, 0, 3],
        //  [0, 0, 0]]
        CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 2.0), (1, 2, 3.0)])
    }

    #[test]
    fn structure_and_lookup() {
        let a = example();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 2), 3.0);
        assert_eq!(a.get(2, 2), 0.0);
        assert!(a.row_is_empty(2));
        assert!(!a.row_is_empty(1));
    }

    #[test]
    fn matvec_matches_dense() {
        let a = example();
        let d = a.to_dense();
        let x = vec![1.0, -1.0, 2.0];
        assert_eq!(a.matvec(&x), d.matvec(&x));
        assert_eq!(a.transpose_matvec(&x), d.transpose_matvec(&x));
    }

    #[test]
    fn duplicates_are_summed() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 0), 3.5);
    }

    #[test]
    fn empty_matrix_works() {
        let a = CsrMatrix::from_triplets(3, 4, &[]);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.matvec(&[0.0; 4]), vec![0.0; 3]);
    }

    #[test]
    fn entries_out_of_order_are_handled() {
        let a = CsrMatrix::from_triplets(3, 3, &[(2, 0, 5.0), (0, 2, 1.0), (1, 1, 4.0)]);
        assert_eq!(a.get(2, 0), 5.0);
        assert_eq!(a.get(0, 2), 1.0);
        assert_eq!(a.get(1, 1), 4.0);
    }
}
