//! Algorithm 2: the algebraic formulation of BFS on evolving graphs.
//!
//! Algorithm 2 performs BFS by power iteration of the transposed block
//! adjacency matrix: starting from the indicator vector `b` of the root, the
//! iterates `Aᵀ_n b, (Aᵀ_n)² b, …` light up exactly the temporal nodes at
//! distance 1, 2, … from the root, provided already-visited entries are
//! zeroed after each step (lines 8–12 of the pseudocode).
//!
//! Three engines are provided, mirroring the complexity results of
//! Section III-E:
//!
//! * [`algebraic_bfs_dense`] — materialises the dense `A_n` over active
//!   temporal nodes (Theorem 5, `O(k |V|²)`);
//! * [`algebraic_bfs_blocked`] — keeps the matrix implicit as per-snapshot
//!   CSC blocks plus activeness masks, evaluating the off-diagonal `⊙`
//!   products by masking (Theorem 6, `O(k (|Ẽ| + |V|))` per the paper's
//!   accounting);
//! * [`algebraic_bfs`] — convenience wrapper building the blocks from a graph
//!   and running the blocked engine.
//!
//! All three return an ordinary [`DistanceMap`], so equality with Algorithm 1
//! (Theorem 4) is a plain `==` on the flat distance arrays.

use egraph_core::bfs::check_root;
use egraph_core::distance::DistanceMap;
use egraph_core::error::Result;
use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::TemporalNode;

use crate::block::BlockAdjacency;
use crate::dense::DenseMatrix;

/// Runs the blocked algebraic BFS directly from an evolving graph.
pub fn algebraic_bfs<G: EvolvingGraph>(graph: &G, root: TemporalNode) -> Result<DistanceMap> {
    check_root(graph, root)?;
    let blocks = BlockAdjacency::from_graph(graph);
    Ok(algebraic_bfs_blocked(&blocks, root))
}

/// Algorithm 2 on the implicit blocked representation.
///
/// The block vector `b` has one length-`N` segment per snapshot. One
/// iteration computes, for every snapshot `t`,
///
/// ```text
/// b'[t] = A[t]ᵀ b[t]  +  Σ_{s<t} M[s,t]ᵀ b[s]
/// ```
///
/// The causal sum is evaluated with a running prefix accumulator (the mass a
/// node has emitted at earlier active snapshots), so the whole iteration
/// costs `O(|Ẽ| + |V| + N·n)` rather than the naïve `O(n² N)`.
///
/// The caller must have validated the root (see
/// [`egraph_core::bfs::check_root`]); [`algebraic_bfs`] does so.
pub fn algebraic_bfs_blocked(blocks: &BlockAdjacency, root: TemporalNode) -> DistanceMap {
    let n = blocks.num_nodes();
    let n_t = blocks.num_timestamps();
    let dim = n * n_t;

    let mut b = vec![0.0f64; dim];
    b[root.flat_index(n)] = 1.0;

    let mut visited = vec![false; dim];
    visited[root.flat_index(n)] = true;

    let mut reached: Vec<(TemporalNode, u32)> = Vec::new();
    let mut next = vec![0.0f64; dim];
    let mut k: u32 = 1;

    loop {
        next.iter_mut().for_each(|x| *x = 0.0);

        // Running causal accumulator: carry[v] = Σ over earlier snapshots s
        // of b[s*n + v] restricted to nodes active at s.
        let mut carry = vec![0.0f64; n];
        for t in 0..n_t {
            let ti = egraph_core::ids::TimeIndex::from_index(t);
            let mask_t = blocks.active_mask(ti);
            let b_t = &b[t * n..(t + 1) * n];

            // Static contribution: A[t]ᵀ b[t].
            let static_part = blocks.block(ti).transpose_matvec(b_t);

            let out = &mut next[t * n..(t + 1) * n];
            for v in 0..n {
                // Causal contribution: mass emitted earlier by node v, kept
                // only if v is active now (M[s,t] requires both end points).
                let causal = if mask_t[v] { carry[v] } else { 0.0 };
                out[v] = static_part[v] + causal;
            }

            // Fold this snapshot's frontier mass into the accumulator for
            // later snapshots (only active components emit causal edges).
            for v in 0..n {
                if mask_t[v] {
                    carry[v] += b_t[v];
                }
            }
        }

        // Zero out already-visited temporal nodes (lines 8–12 of Algorithm 2)
        // and record the newly reached ones at distance k.
        let mut any = false;
        for (idx, x) in next.iter_mut().enumerate() {
            if *x == 0.0 {
                continue;
            }
            if visited[idx] {
                *x = 0.0;
            } else {
                visited[idx] = true;
                reached.push((TemporalNode::from_flat_index(idx, n), k));
                any = true;
            }
        }
        if !any {
            break;
        }
        std::mem::swap(&mut b, &mut next);
        k += 1;
    }

    DistanceMap::from_reached(n, n_t, root, &reached)
}

/// Algorithm 2 with the dense `A_n` of Theorem 5: the matrix over active
/// temporal nodes is materialised and each iteration is a dense
/// `O(|V|²)` transposed matrix–vector product.
pub fn algebraic_bfs_dense<G: EvolvingGraph>(graph: &G, root: TemporalNode) -> Result<DistanceMap> {
    check_root(graph, root)?;
    let blocks = BlockAdjacency::from_graph(graph);
    let (an, labels) = blocks.to_dense_an();
    Ok(dense_power_iteration(
        &an,
        &labels,
        graph.num_nodes(),
        graph.num_timestamps(),
        root,
    ))
}

/// Power iteration of a dense adjacency matrix whose rows/columns are
/// labelled by `labels`; shared by [`algebraic_bfs_dense`] and the tests.
pub fn dense_power_iteration(
    an: &DenseMatrix,
    labels: &[TemporalNode],
    num_nodes: usize,
    num_timestamps: usize,
    root: TemporalNode,
) -> DistanceMap {
    let dim = labels.len();
    let root_idx = labels
        .iter()
        .position(|&tn| tn == root)
        .expect("root must be an active temporal node");

    let mut b = vec![0.0f64; dim];
    b[root_idx] = 1.0;
    let mut visited = vec![false; dim];
    visited[root_idx] = true;

    let mut reached: Vec<(TemporalNode, u32)> = Vec::new();
    let mut k = 1u32;
    loop {
        let mut next = an.transpose_matvec(&b);
        let mut any = false;
        for (idx, x) in next.iter_mut().enumerate() {
            if *x == 0.0 {
                continue;
            }
            if visited[idx] {
                *x = 0.0;
            } else {
                visited[idx] = true;
                reached.push((labels[idx], k));
                any = true;
            }
        }
        if !any {
            break;
        }
        b = next;
        k += 1;
    }
    DistanceMap::from_reached(num_nodes, num_timestamps, root, &reached)
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::bfs::bfs;
    use egraph_core::examples::{cyclic_example, paper_figure1, staircase};
    use egraph_core::prelude::*;

    #[test]
    fn blocked_engine_matches_algorithm_1_on_the_paper_example() {
        let g = paper_figure1();
        for &root in &g.active_nodes() {
            let alg1 = bfs(&g, root).unwrap();
            let alg2 = algebraic_bfs(&g, root).unwrap();
            assert_eq!(alg1.as_flat_slice(), alg2.as_flat_slice(), "root {root:?}");
        }
    }

    #[test]
    fn dense_engine_matches_algorithm_1_on_the_paper_example() {
        let g = paper_figure1();
        for &root in &g.active_nodes() {
            let alg1 = bfs(&g, root).unwrap();
            let alg2 = algebraic_bfs_dense(&g, root).unwrap();
            assert_eq!(alg1.as_flat_slice(), alg2.as_flat_slice(), "root {root:?}");
        }
    }

    #[test]
    fn figure3_trace_from_root_1_t2() {
        let g = paper_figure1();
        let map = algebraic_bfs(&g, TemporalNode::from_raw(0, 1)).unwrap();
        assert_eq!(map.distance(TemporalNode::from_raw(2, 1)), Some(1));
        assert_eq!(map.distance(TemporalNode::from_raw(2, 2)), Some(2));
        assert_eq!(map.num_reached(), 3);
    }

    #[test]
    fn rejects_inactive_roots_like_algorithm_1() {
        let g = paper_figure1();
        assert!(algebraic_bfs(&g, TemporalNode::from_raw(2, 0)).is_err());
        assert!(algebraic_bfs_dense(&g, TemporalNode::from_raw(2, 0)).is_err());
    }

    #[test]
    fn terminates_on_cyclic_snapshots() {
        // Theorem 3's cyclic branch: the visited zeroing forces termination.
        let g = cyclic_example();
        for &root in &g.active_nodes() {
            let alg1 = bfs(&g, root).unwrap();
            let alg2 = algebraic_bfs(&g, root).unwrap();
            assert_eq!(alg1.as_flat_slice(), alg2.as_flat_slice(), "root {root:?}");
        }
    }

    #[test]
    fn agrees_with_algorithm_1_on_a_staircase() {
        let g = staircase(7);
        let root = TemporalNode::from_raw(0, 0);
        let alg1 = bfs(&g, root).unwrap();
        let alg2 = algebraic_bfs(&g, root).unwrap();
        let dense = algebraic_bfs_dense(&g, root).unwrap();
        assert_eq!(alg1.as_flat_slice(), alg2.as_flat_slice());
        assert_eq!(alg1.as_flat_slice(), dense.as_flat_slice());
    }

    #[test]
    fn agrees_with_algorithm_1_on_random_graphs() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..10 {
            let n = 12 + (trial % 5);
            let n_t = 3 + (trial % 3);
            let mut g = AdjacencyListGraph::directed_with_unit_times(n, n_t);
            for _ in 0..(3 * n) {
                let u = (next() % n as u64) as u32;
                let v = (next() % n as u64) as u32;
                let t = (next() % n_t as u64) as u32;
                if u != v {
                    g.add_edge(NodeId(u), NodeId(v), TimeIndex(t)).unwrap();
                }
            }
            let actives = g.active_nodes();
            if actives.is_empty() {
                continue;
            }
            let root = actives[(next() % actives.len() as u64) as usize];
            let alg1 = bfs(&g, root).unwrap();
            let alg2 = algebraic_bfs(&g, root).unwrap();
            let dense = algebraic_bfs_dense(&g, root).unwrap();
            assert_eq!(alg1.as_flat_slice(), alg2.as_flat_slice(), "trial {trial}");
            assert_eq!(alg1.as_flat_slice(), dense.as_flat_slice(), "trial {trial}");
        }
    }

    #[test]
    fn undirected_graphs_are_handled() {
        let mut g = AdjacencyListGraph::undirected_with_unit_times(4, 2);
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), TimeIndex(1)).unwrap();
        g.add_edge(NodeId(2), NodeId(3), TimeIndex(1)).unwrap();
        let root = TemporalNode::from_raw(1, 0);
        let alg1 = bfs(&g, root).unwrap();
        let alg2 = algebraic_bfs(&g, root).unwrap();
        assert_eq!(alg1.as_flat_slice(), alg2.as_flat_slice());
    }
}
