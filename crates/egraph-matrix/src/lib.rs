//! # egraph-matrix
//!
//! Linear-algebra substrate and the algebraic BFS formulation (Section III of
//! *"The Right Way to Search Evolving Graphs"*, Chen & Zhang, IPPS 2016).
//!
//! The crate is built from scratch on top of `egraph-core`:
//!
//! * dense ([`dense::DenseMatrix`]) and sparse ([`csr::CsrMatrix`],
//!   [`csc::CscMatrix`], [`coo::CooMatrix`]) matrices with serial and
//!   rayon-parallel mat-vec kernels;
//! * the block adjacency matrices `M_n` / `A_n` of Section III-C
//!   ([`block::BlockAdjacency`]) and the `⊙` product of Section III-B
//!   ([`odot`]);
//! * **Algorithm 2** — BFS as power iteration of `A_nᵀ`
//!   ([`algebraic_bfs()`]), in dense (Theorem 5) and blocked-sparse
//!   (Theorem 6) forms, both returning the same [`DistanceMap`] type as
//!   Algorithm 1 so the equivalence of Theorem 4 is directly testable;
//! * temporal walk counting via matrix powers ([`path_count`]), the naïve
//!   (incorrect) path sums of Section III-A ([`naive_sum`]) and the
//!   nilpotency lemma ([`nilpotent`]).
//!
//! ## Example: Algorithm 1 ≡ Algorithm 2
//!
//! ```
//! use egraph_core::prelude::*;
//! use egraph_matrix::algebraic_bfs::algebraic_bfs;
//!
//! let g = egraph_core::examples::paper_figure1();
//! let root = TemporalNode::from_raw(0, 0);
//! let alg1 = bfs(&g, root).unwrap();
//! let alg2 = algebraic_bfs(&g, root).unwrap();
//! assert_eq!(alg1.as_flat_slice(), alg2.as_flat_slice());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algebraic_bfs;
pub mod block;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod dynamic_walks;
pub mod naive_sum;
pub mod nilpotent;
pub mod odot;
pub mod parallel;
pub mod path_count;

pub use algebraic_bfs::{algebraic_bfs, algebraic_bfs_blocked, algebraic_bfs_dense};
pub use block::BlockAdjacency;
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use egraph_core::distance::DistanceMap;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::algebraic_bfs::{algebraic_bfs, algebraic_bfs_blocked, algebraic_bfs_dense};
    pub use crate::block::BlockAdjacency;
    pub use crate::coo::CooMatrix;
    pub use crate::csc::CscMatrix;
    pub use crate::csr::CsrMatrix;
    pub use crate::dense::DenseMatrix;
    pub use crate::dynamic_walks::{
        broadcast_scores, dynamic_communicability, receive_scores, safe_alpha,
    };
    pub use crate::naive_sum::{identity_padded_product, naive_path_sum, plain_product};
    pub use crate::nilpotent::{all_snapshots_acyclic, is_nilpotent, lemma1_check};
    pub use crate::odot::{activeness_mask, causal_apply, odot_componentwise, odot_literal};
    pub use crate::parallel::{par_csc_transpose_matvec, par_csr_matvec, par_dense_matvec};
    pub use crate::path_count::{iterate_sequence, matrix_walk_counts, total_path_count};
}
