//! The "wrong ways" of Section III-A: naïve adjacency-product path sums.
//!
//! For a static graph, `(A^k)_{ij}` counts paths of length `k`. The tempting
//! generalisation to evolving graphs — Equation (2) of the paper — sums
//! products of per-snapshot adjacency matrices over increasing chains of
//! time stamps:
//!
//! ```text
//! S[tn] = A[t1] A[tn] + Σ A[t1] A[t] A[tn] + … + Σ A[t1] A[t] A[t′] ⋯ A[tn]
//! ```
//!
//! The paper shows that this *miscounts* temporal paths (it finds 1 path from
//! `(1,t1)` to `(3,t3)` in the Figure 1 graph where there are 2) because
//! products of adjacency matrices cannot express causal edges. Padding the
//! diagonal with ones (so a node may "wait") is still wrong, because it also
//! lets *inactive* nodes wait, counting sequences that are not temporal
//! paths.
//!
//! Both constructions are implemented here so that the baseline crate, the
//! tests and the `naive_vs_correct` benchmark can demonstrate the
//! discrepancy quantitatively.

use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::TimeIndex;

use crate::block::BlockAdjacency;
use crate::dense::DenseMatrix;

/// The per-snapshot dense adjacency matrices `⟨A[1], …, A[n]⟩`.
pub fn snapshot_matrices<G: EvolvingGraph>(graph: &G) -> Vec<DenseMatrix> {
    let blocks = BlockAdjacency::from_graph(graph);
    (0..graph.num_timestamps())
        .map(|t| blocks.block(TimeIndex::from_index(t)).to_dense())
        .collect()
}

/// Equation (2): the naïve discrete path sum `S[tn]`.
///
/// Every term is a product that starts with `A[t1]`, ends with `A[tn]` and
/// threads through an arbitrary (possibly empty) increasing selection of the
/// intermediate snapshots. Entry `(i, j)` is the naïve "count of temporal
/// paths from `(i, t1)` to `(j, tn)`" — which the paper proves is wrong.
///
/// Returns the zero matrix for graphs with fewer than two snapshots (the sum
/// is empty).
pub fn naive_path_sum<G: EvolvingGraph>(graph: &G) -> DenseMatrix {
    let mats = snapshot_matrices(graph);
    naive_path_sum_from_matrices(&mats)
}

/// [`naive_path_sum`] on explicit per-snapshot matrices.
pub fn naive_path_sum_from_matrices(mats: &[DenseMatrix]) -> DenseMatrix {
    let n = mats.first().map(|m| m.rows()).unwrap_or(0);
    let mut total = DenseMatrix::zeros(n, n);
    let n_t = mats.len();
    if n_t < 2 {
        return total;
    }
    // Sum over every subset of the intermediate snapshots {1, …, n_t-2},
    // taken in increasing order: A[0] · Π_{s ∈ subset} A[s] · A[n_t-1].
    let inner = n_t - 2;
    for bits in 0..(1u64 << inner) {
        let mut prod = mats[0].clone();
        for s in 0..inner {
            if bits & (1 << s) != 0 {
                prod = prod.matmul(&mats[s + 1]);
            }
        }
        prod = prod.matmul(&mats[n_t - 1]);
        total = total.add(&prod);
    }
    total
}

/// The identity-padded variant: `Π_t (A[t] + I)`, which lets every node —
/// active or not — "wait" between snapshots. Entry `(i, j)` over-counts by
/// including sequences through inactive temporal nodes.
pub fn identity_padded_product<G: EvolvingGraph>(graph: &G) -> DenseMatrix {
    let mats = snapshot_matrices(graph);
    identity_padded_product_from_matrices(&mats)
}

/// [`identity_padded_product`] on explicit per-snapshot matrices.
pub fn identity_padded_product_from_matrices(mats: &[DenseMatrix]) -> DenseMatrix {
    let n = mats.first().map(|m| m.rows()).unwrap_or(0);
    let mut prod = DenseMatrix::identity(n);
    for a in mats {
        prod = prod.matmul(&a.add(&DenseMatrix::identity(n)));
    }
    prod
}

/// The plain product `A[t1] A[t2] ⋯ A[tn]` of all snapshot matrices — the
/// most naïve construction of all. The paper notes that for Figure 1 already
/// `A[t1] A[t2] = 0`, wiping out every path.
pub fn plain_product<G: EvolvingGraph>(graph: &G) -> DenseMatrix {
    let mats = snapshot_matrices(graph);
    let n = mats.first().map(|m| m.rows()).unwrap_or(0);
    let mut prod = DenseMatrix::identity(n);
    for a in &mats {
        prod = prod.matmul(a);
    }
    prod
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::examples::paper_figure1;
    use egraph_core::ids::TemporalNode;
    use egraph_core::paths::count_walks_of_length;

    #[test]
    fn section_iiia_miscount_is_reproduced() {
        // (S[t3])_{13} = 1, but the true number of temporal paths from
        // (1,t1) to (3,t3) is 2.
        let g = paper_figure1();
        let s = naive_path_sum(&g);
        assert_eq!(s.get(0, 2), 1.0);

        let true_count: u64 = (1..=4)
            .map(|k| {
                count_walks_of_length(
                    &g,
                    TemporalNode::from_raw(0, 0),
                    TemporalNode::from_raw(2, 2),
                    k,
                )
            })
            .sum();
        assert_eq!(true_count, 2);
        assert_ne!(s.get(0, 2) as u64, true_count);
    }

    #[test]
    fn first_term_of_the_sum_vanishes_as_noted_in_the_paper() {
        // A[t1] A[t2] = 0 for the Figure 1 graph.
        let g = paper_figure1();
        let mats = snapshot_matrices(&g);
        assert!(mats[0].matmul(&mats[1]).is_zero());
        // And therefore the plain product of all three matrices vanishes too.
        assert!(plain_product(&g).is_zero());
    }

    #[test]
    fn identity_padding_counts_sequences_through_inactive_nodes() {
        let g = paper_figure1();
        let padded = identity_padded_product(&g);
        // Node 3 is inactive at t1, so there are no temporal paths starting
        // at (3, t1) — yet the padded product reports a "path" from 3 to 3
        // (waiting at an inactive node three times).
        assert!(padded.get(2, 2) >= 1.0);
        let true_count: u64 = (0..=4)
            .map(|k| {
                count_walks_of_length(
                    &g,
                    TemporalNode::from_raw(2, 0),
                    TemporalNode::from_raw(2, 2),
                    k,
                )
            })
            .sum();
        assert_eq!(true_count, 0);
    }

    #[test]
    fn degenerate_graphs_yield_zero_or_identity() {
        let g = egraph_core::adjacency::AdjacencyListGraph::directed_with_unit_times(3, 1);
        assert!(naive_path_sum(&g).is_zero());
        // With one (empty) snapshot the padded product is A + I = I.
        assert_eq!(identity_padded_product(&g), DenseMatrix::identity(3));
    }

    #[test]
    fn naive_sum_from_matrices_handles_two_snapshots() {
        // Two snapshots: S = A[1] A[2] only.
        let a1 = DenseMatrix::from_ones(2, 2, &[(0, 1)]);
        let a2 = DenseMatrix::from_ones(2, 2, &[(1, 0)]);
        let s = naive_path_sum_from_matrices(&[a1.clone(), a2.clone()]);
        assert_eq!(s, a1.matmul(&a2));
    }
}
