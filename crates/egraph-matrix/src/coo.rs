//! Coordinate (triplet) sparse matrix builder.
//!
//! Sparse matrices are most conveniently assembled as `(row, col, value)`
//! triplets and then compressed into CSR or CSC form. Duplicate entries are
//! summed during compression, matching the usual sparse-assembly convention.

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;

/// A sparse matrix under assembly, stored as unsorted triplets.
#[derive(Clone, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooMatrix {
    /// Creates an empty `rows × cols` triplet matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty matrix with room for `cap` triplets.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (before duplicate summing).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Adds a triplet.
    ///
    /// # Panics
    /// Panics (in debug builds) if the position lies outside the matrix.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols, "triplet out of range");
        self.entries.push((row as u32, col as u32, value));
    }

    /// Adds a structural one at `(row, col)` — adjacency-matrix assembly.
    pub fn push_one(&mut self, row: usize, col: usize) {
        self.push(row, col, 1.0);
    }

    /// The triplets accumulated so far.
    pub fn entries(&self) -> &[(u32, u32, f64)] {
        &self.entries
    }

    /// Compresses into CSR form, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_triplets(self.rows, self.cols, &self.entries)
    }

    /// Compresses into CSC form, summing duplicates.
    pub fn to_csc(&self) -> CscMatrix {
        CscMatrix::from_triplets(self.rows, self.cols, &self.entries)
    }

    /// Expands into a dense matrix (duplicates summed).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for &(r, c, v) in &self.entries {
            m.add_to(r as usize, c as usize, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_convert_to_dense() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 1, 2.0);
        coo.push_one(1, 2);
        coo.push(0, 1, 3.0); // duplicate: summed
        let d = coo.to_dense();
        assert_eq!(d.get(0, 1), 5.0);
        assert_eq!(d.get(1, 2), 1.0);
        assert_eq!(coo.nnz(), 3);
    }

    #[test]
    fn csr_and_csc_agree_with_dense() {
        let mut coo = CooMatrix::with_capacity(3, 3, 4);
        coo.push_one(0, 1);
        coo.push_one(1, 2);
        coo.push_one(2, 0);
        coo.push(0, 1, 1.0);
        let d = coo.to_dense();
        let csr = coo.to_csr();
        let csc = coo.to_csc();
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(csr.matvec(&x), d.matvec(&x));
        assert_eq!(csc.matvec(&x), d.matvec(&x));
        assert_eq!(csr.nnz(), 3); // duplicate summed into one stored entry
        assert_eq!(csc.nnz(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    #[cfg(debug_assertions)] // debug_assert! is compiled out in release tests
    fn debug_assert_catches_out_of_range() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(3, 0, 1.0);
    }
}
