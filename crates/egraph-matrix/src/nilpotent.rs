//! Nilpotency of the block adjacency matrix (Lemma 1).
//!
//! Lemma 1: if every snapshot of an evolving directed graph is acyclic, then
//! the block adjacency matrix `A_n` is nilpotent — some power of it is the
//! zero matrix. Theorem 3's termination argument for the algebraic BFS rests
//! on this in the acyclic case. These helpers make the lemma executable so
//! property tests can exercise it on random acyclic inputs.

use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::{NodeId, TimeIndex};
use egraph_core::static_graph::StaticGraph;

use crate::block::BlockAdjacency;
use crate::dense::DenseMatrix;

/// Whether `m` is nilpotent, i.e. `m^k = 0` for some `k ≤ dim`.
pub fn is_nilpotent(m: &DenseMatrix) -> bool {
    nilpotency_index(m).is_some()
}

/// The smallest `k` with `m^k = 0`, or `None` if `m` is not nilpotent.
/// (By Cayley–Hamilton it suffices to check powers up to the dimension.)
pub fn nilpotency_index(m: &DenseMatrix) -> Option<usize> {
    assert_eq!(m.rows(), m.cols(), "nilpotency requires a square matrix");
    let dim = m.rows();
    if dim == 0 {
        return Some(0);
    }
    let mut acc = DenseMatrix::identity(dim);
    for k in 0..=dim {
        if acc.is_zero() {
            return Some(k);
        }
        acc = acc.matmul(m);
    }
    if acc.is_zero() {
        Some(dim)
    } else {
        None
    }
}

/// Whether every snapshot `G[t]` of the evolving graph is an acyclic directed
/// graph — the hypothesis of Lemma 1.
pub fn all_snapshots_acyclic<G: EvolvingGraph>(graph: &G) -> bool {
    for t in 0..graph.num_timestamps() {
        let ti = TimeIndex::from_index(t);
        let mut s = StaticGraph::new(graph.num_nodes());
        for v in 0..graph.num_nodes() {
            let v_id = NodeId::from_index(v);
            graph.for_each_static_out(v_id, ti, &mut |w| {
                s.add_edge(v, w.index());
            });
        }
        if !s.is_acyclic() {
            return false;
        }
    }
    true
}

/// Executable statement of Lemma 1 for a specific graph: builds the dense
/// `A_n` and checks its nilpotency. Returns the pair
/// `(all snapshots acyclic, A_n nilpotent)`; Lemma 1 promises that the first
/// implies the second.
pub fn lemma1_check<G: EvolvingGraph>(graph: &G) -> (bool, bool) {
    let acyclic = all_snapshots_acyclic(graph);
    let (an, _) = BlockAdjacency::from_graph(graph).to_dense_an();
    (acyclic, is_nilpotent(&an))
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::examples::{cyclic_example, paper_figure1, staircase};

    #[test]
    fn strictly_upper_triangular_matrices_are_nilpotent() {
        let m = DenseMatrix::from_ones(3, 3, &[(0, 1), (0, 2), (1, 2)]);
        assert!(is_nilpotent(&m));
        assert_eq!(nilpotency_index(&m), Some(3));
    }

    #[test]
    fn identity_is_not_nilpotent() {
        assert!(!is_nilpotent(&DenseMatrix::identity(4)));
        assert_eq!(nilpotency_index(&DenseMatrix::identity(4)), None);
    }

    #[test]
    fn zero_matrix_has_index_at_most_one() {
        assert_eq!(nilpotency_index(&DenseMatrix::zeros(3, 3)), Some(1));
        assert_eq!(nilpotency_index(&DenseMatrix::zeros(0, 0)), Some(0));
    }

    #[test]
    fn lemma1_holds_on_the_paper_example() {
        let g = paper_figure1();
        let (acyclic, nilpotent) = lemma1_check(&g);
        assert!(acyclic);
        assert!(nilpotent);
    }

    #[test]
    fn lemma1_holds_on_staircases() {
        let (acyclic, nilpotent) = lemma1_check(&staircase(6));
        assert!(acyclic && nilpotent);
    }

    #[test]
    fn cyclic_snapshots_are_detected() {
        let g = cyclic_example();
        assert!(!all_snapshots_acyclic(&g));
        // Lemma 1 says nothing in this case; the A_n of this particular graph
        // is in fact not nilpotent because the t0 cycle survives in a block.
        let (an, _) = BlockAdjacency::from_graph(&g).to_dense_an();
        assert!(!is_nilpotent(&an));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn nilpotency_rejects_rectangular_matrices() {
        let _ = nilpotency_index(&DenseMatrix::zeros(2, 3));
    }
}
