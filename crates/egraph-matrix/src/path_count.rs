//! Temporal walk counting via powers of the block adjacency matrix.
//!
//! Section III-C closes with the observation that `(A_3ᵀ)³ b` "correctly
//! counts the two allowed temporal paths from (1, t1) to (3, t3)". This
//! module turns that observation into reusable functions:
//!
//! * [`iterate_sequence`] — the raw sequence of iterates
//!   `b, A_nᵀ b, (A_nᵀ)² b, …` over the active-node ordering, exactly as
//!   printed in the paper's worked example;
//! * [`matrix_walk_counts`] — the counts after `k` hops, flat-indexed over
//!   all temporal nodes so they are directly comparable with
//!   [`egraph_core::paths::walk_count_vector`] (the graph-side dynamic
//!   program);
//! * [`total_path_count`] — sums over all hop counts, i.e. the number of
//!   temporal paths of any length between two temporal nodes of an acyclic
//!   evolving graph.

use egraph_core::graph::EvolvingGraph;
use egraph_core::ids::TemporalNode;

use crate::block::BlockAdjacency;

/// The sequence `⟨b, A_nᵀ b, (A_nᵀ)² b, …⟩` (without visited-zeroing) over
/// the active-node labelling of `A_n`, starting from the indicator of
/// `root`. The sequence stops after `steps` applications.
///
/// Returns the labels of the vector components alongside the iterates.
pub fn iterate_sequence<G: EvolvingGraph>(
    graph: &G,
    root: TemporalNode,
    steps: usize,
) -> (Vec<TemporalNode>, Vec<Vec<f64>>) {
    let blocks = BlockAdjacency::from_graph(graph);
    let (an, labels) = blocks.to_dense_an();
    let dim = labels.len();
    let mut b = vec![0.0; dim];
    if let Some(idx) = labels.iter().position(|&tn| tn == root) {
        b[idx] = 1.0;
    }
    let mut out = vec![b.clone()];
    for _ in 0..steps {
        b = an.transpose_matvec(&b);
        out.push(b.clone());
    }
    (labels, out)
}

/// The number of temporal walks of exactly `k` hops from `root` to every
/// temporal node, computed as `(A_nᵀ)^k e_root` and scattered back to the
/// flat (time-major, all temporal nodes) indexing used by
/// [`egraph_core::paths::walk_count_vector`].
pub fn matrix_walk_counts<G: EvolvingGraph>(graph: &G, root: TemporalNode, k: usize) -> Vec<f64> {
    let (labels, iterates) = iterate_sequence(graph, root, k);
    let n = graph.num_nodes();
    let mut flat = vec![0.0; n * graph.num_timestamps()];
    for (i, &tn) in labels.iter().enumerate() {
        flat[tn.flat_index(n)] = iterates[k][i];
    }
    flat
}

/// The total number of temporal walks (of any positive number of hops, up to
/// the number of active nodes) from `from` to `to`. For acyclic evolving
/// graphs the block matrix is nilpotent (Lemma 1), so the sum is finite and
/// equals the number of temporal *paths*.
pub fn total_path_count<G: EvolvingGraph>(graph: &G, from: TemporalNode, to: TemporalNode) -> f64 {
    let blocks = BlockAdjacency::from_graph(graph);
    let (an, labels) = blocks.to_dense_an();
    let dim = labels.len();
    let (Some(src), Some(dst)) = (
        labels.iter().position(|&tn| tn == from),
        labels.iter().position(|&tn| tn == to),
    ) else {
        return 0.0;
    };
    let mut b = vec![0.0; dim];
    b[src] = 1.0;
    let mut total = 0.0;
    for _ in 0..dim {
        b = an.transpose_matvec(&b);
        total += b[dst];
        if b.iter().all(|&x| x == 0.0) {
            break;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::examples::{paper_figure1, staircase};
    use egraph_core::paths::walk_count_vector;

    fn tn(v: u32, t: u32) -> TemporalNode {
        TemporalNode::from_raw(v, t)
    }

    #[test]
    fn section_iiic_iterate_sequence_is_reproduced() {
        // The paper lists the iterates from b = e_(1,t1):
        // e1 → [0,1,1,0,0,0] → [0,0,0,1,1,0] → [0,0,0,0,0,2] → 0.
        let g = paper_figure1();
        let (labels, iter) = iterate_sequence(&g, tn(0, 0), 4);
        assert_eq!(labels.len(), 6);
        assert_eq!(iter[0], vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(iter[1], vec![0.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
        assert_eq!(iter[2], vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        assert_eq!(iter[3], vec![0.0, 0.0, 0.0, 0.0, 0.0, 2.0]);
        assert_eq!(iter[4], vec![0.0; 6]);
    }

    #[test]
    fn matrix_counts_agree_with_the_graph_side_dynamic_program() {
        let g = paper_figure1();
        for k in 0..=4usize {
            let mat = matrix_walk_counts(&g, tn(0, 0), k);
            let dp = walk_count_vector(&g, tn(0, 0), k);
            let dp_f64: Vec<f64> = dp.iter().map(|&x| x as f64).collect();
            assert_eq!(mat, dp_f64, "hop count {k}");
        }
    }

    #[test]
    fn two_paths_from_1t1_to_3t3() {
        let g = paper_figure1();
        assert_eq!(total_path_count(&g, tn(0, 0), tn(2, 2)), 2.0);
        assert_eq!(total_path_count(&g, tn(0, 0), tn(2, 1)), 1.0);
        // From/to inactive temporal nodes: zero.
        assert_eq!(total_path_count(&g, tn(2, 0), tn(2, 2)), 0.0);
    }

    #[test]
    fn staircase_has_exactly_one_path_end_to_end() {
        let g = staircase(5);
        assert_eq!(total_path_count(&g, tn(0, 0), tn(4, 3)), 1.0);
    }

    #[test]
    fn matrix_counts_agree_with_dp_on_random_graphs() {
        let mut state = 0xDEADBEEFCAFEBABEu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..5 {
            let n = 8usize;
            let n_t = 3usize;
            let mut g =
                egraph_core::adjacency::AdjacencyListGraph::directed_with_unit_times(n, n_t);
            for _ in 0..20 {
                let u = (next() % n as u64) as u32;
                let v = (next() % n as u64) as u32;
                let t = (next() % n_t as u64) as u32;
                if u != v {
                    g.add_edge(
                        egraph_core::ids::NodeId(u),
                        egraph_core::ids::NodeId(v),
                        egraph_core::ids::TimeIndex(t),
                    )
                    .unwrap();
                }
            }
            use egraph_core::graph::EvolvingGraph as _;
            let actives = g.active_nodes();
            let root = actives[(next() % actives.len() as u64) as usize];
            for k in 0..4usize {
                let mat = matrix_walk_counts(&g, root, k);
                let dp: Vec<f64> = walk_count_vector(&g, root, k)
                    .iter()
                    .map(|&x| x as f64)
                    .collect();
                assert_eq!(mat, dp, "trial {trial}, k={k}");
            }
        }
    }
}
