//! Compressed sparse column (CSC) matrices.
//!
//! The complexity analysis of the algebraic BFS (Theorem 6) is stated for a
//! "collection of compressed sparse column matrices for each diagonal block
//! A\[t\]". CSC is convenient there because the transposed product `Aᵀ b`
//! gathers along columns, and because checking "is column `i` empty" — which
//! is how the `⊙` activeness test is evaluated — is a constant-time pointer
//! comparison.

use crate::dense::DenseMatrix;

/// A sparse `rows × cols` matrix in compressed sparse column format.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from triplets, summing duplicates.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f64)]) -> Self {
        let mut sorted: Vec<(u32, u32, f64)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (c, r));

        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            if let Some(last) = merged.last_mut() {
                if last.0 == r && last.1 == c {
                    last.2 += v;
                    continue;
                }
            }
            merged.push((r, c, v));
        }

        let mut col_ptr = vec![0usize; cols + 1];
        for &(_, c, _) in &merged {
            col_ptr[c as usize + 1] += 1;
        }
        for i in 0..cols {
            col_ptr[i + 1] += col_ptr[i];
        }
        let row_idx = merged.iter().map(|&(r, _, _)| r).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        CscMatrix {
            rows,
            cols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Builds the CSC form of a 0/1 adjacency matrix from edge pairs.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let triplets: Vec<(u32, u32, f64)> = edges.iter().map(|&(r, c)| (r, c, 1.0)).collect();
        Self::from_triplets(n, n, &triplets)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row indices and values of column `c`.
    #[inline]
    pub fn col(&self, c: usize) -> (&[u32], &[f64]) {
        let lo = self.col_ptr[c];
        let hi = self.col_ptr[c + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Whether column `c` stores no entries — the `O(1)` emptiness check used
    /// when evaluating the `⊙` product (proof of Theorem 6).
    #[inline]
    pub fn col_is_empty(&self, c: usize) -> bool {
        self.col_ptr[c] == self.col_ptr[c + 1]
    }

    /// Whether row `r` stores no entries. CSC has no row index, so this is a
    /// scan over the stored entries (`O(nnz)`); the proof of Theorem 6 charges
    /// `O(|V[t]|)` for the batched version, which
    /// [`CscMatrix::nonempty_rows`] provides.
    pub fn row_is_empty(&self, r: usize) -> bool {
        !self.row_idx.iter().any(|&x| x as usize == r)
    }

    /// Marks which rows contain at least one entry, in one `O(nnz)` sweep.
    pub fn nonempty_rows(&self) -> Vec<bool> {
        let mut mask = vec![false; self.rows];
        for &r in &self.row_idx {
            mask[r as usize] = true;
        }
        mask
    }

    /// Marks which columns contain at least one entry.
    pub fn nonempty_cols(&self) -> Vec<bool> {
        (0..self.cols).map(|c| !self.col_is_empty(c)).collect()
    }

    /// Element lookup (linear in the column length).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (rows, vals) = self.col(c);
        rows.iter()
            .position(|&x| x as usize == r)
            .map(|i| vals[i])
            .unwrap_or(0.0)
    }

    /// Sparse matrix–vector product `y = A x` (column-major gaxpy, `2 nnz`
    /// flops).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in matvec");
        let mut y = vec![0.0; self.rows];
        for (c, &xc) in x.iter().enumerate() {
            if xc == 0.0 {
                continue;
            }
            let (rows, vals) = self.col(c);
            for (&r, &v) in rows.iter().zip(vals) {
                y[r as usize] += v * xc;
            }
        }
        y
    }

    /// Transposed product `y = Aᵀ x`: each output component is a dot product
    /// of a column with `x`, which is the access pattern the BFS iteration of
    /// Algorithm 2 performs.
    pub fn transpose_matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch in transpose_matvec");
        let mut y = vec![0.0; self.cols];
        for (c, yc) in y.iter_mut().enumerate() {
            let (rows, vals) = self.col(c);
            let mut acc = 0.0;
            for (&r, &v) in rows.iter().zip(vals) {
                acc += v * x[r as usize];
            }
            *yc = acc;
        }
        y
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for c in 0..self.cols {
            let (rows, vals) = self.col(c);
            for (&r, &v) in rows.iter().zip(vals) {
                m.add_to(r as usize, c, v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CscMatrix {
        // [[0, 1, 0],
        //  [2, 0, 3],
        //  [0, 0, 0]]
        CscMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 2.0), (1, 2, 3.0)])
    }

    #[test]
    fn structure_and_lookup() {
        let a = example();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 2), 3.0);
        assert_eq!(a.get(2, 0), 0.0);
        assert!(!a.col_is_empty(1));
        assert!(a.row_is_empty(2));
        assert_eq!(a.nonempty_rows(), vec![true, true, false]);
        assert_eq!(a.nonempty_cols(), vec![true, true, true]);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = example();
        let d = a.to_dense();
        let x = vec![0.5, -1.0, 2.0];
        assert_eq!(a.matvec(&x), d.matvec(&x));
        assert_eq!(a.transpose_matvec(&x), d.transpose_matvec(&x));
    }

    #[test]
    fn duplicates_are_summed() {
        let a = CscMatrix::from_triplets(2, 2, &[(1, 1, 1.0), (1, 1, 4.0)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(1, 1), 5.0);
    }

    #[test]
    fn from_edges_builds_adjacency() {
        let a = CscMatrix::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 2), 1.0);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn empty_matrix_works() {
        let a = CscMatrix::from_triplets(2, 5, &[]);
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.transpose_matvec(&[1.0, 1.0]), vec![0.0; 5]);
        assert!(a.col_is_empty(4));
    }
}
