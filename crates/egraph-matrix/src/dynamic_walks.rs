//! Dynamic-walk communicability (Grindrod, Parsons, Higham & Estrada).
//!
//! The paper's Definition 4 explicitly contrasts its temporal paths with the
//! *dynamic walks* of Grindrod, Higham and coworkers (references \[9\] and \[10\]
//! of the paper), where waiting on a node between snapshots is allowed
//! implicitly and does not count toward the walk length. The standard summary
//! of that model is the dynamic communicability matrix
//!
//! ```text
//! Q = (I − a·A[t1])⁻¹ (I − a·A[t2])⁻¹ ⋯ (I − a·A[tn])⁻¹
//! ```
//!
//! whose `(i, j)` entry is a weighted count of all dynamic walks from `i` to
//! `j`, with walks of length `ℓ` damped by `a^ℓ`. Implementing it here gives
//! the library a faithful executable version of the *related* notion the
//! paper positions itself against, so the two can be compared on the same
//! graphs (see the `paper_examples` integration tests and the ablation
//! discussion in DESIGN.md).
//!
//! The resolvent requires `a < 1/ρ(A[t])` for every snapshot; for 0/1
//! adjacency matrices `a < 1/max_degree` is a safe practical choice, and
//! [`safe_alpha`] computes one.

use egraph_core::graph::EvolvingGraph;

use crate::dense::DenseMatrix;
use crate::naive_sum::snapshot_matrices;

/// Gauss–Jordan inverse of a square dense matrix. Returns `None` if the
/// matrix is (numerically) singular.
pub fn invert(matrix: &DenseMatrix) -> Option<DenseMatrix> {
    assert_eq!(
        matrix.rows(),
        matrix.cols(),
        "inverse requires a square matrix"
    );
    let n = matrix.rows();
    // Augmented [A | I] elimination.
    let mut a = matrix.clone();
    let mut inv = DenseMatrix::identity(n);
    for col in 0..n {
        // Partial pivoting.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a.get(i, col)
                    .abs()
                    .partial_cmp(&a.get(j, col).abs())
                    .expect("finite entries")
            })
            .expect("non-empty range");
        let pivot = a.get(pivot_row, col);
        if pivot.abs() < 1e-12 {
            return None;
        }
        if pivot_row != col {
            swap_rows(&mut a, pivot_row, col);
            swap_rows(&mut inv, pivot_row, col);
        }
        // Normalise the pivot row.
        let scale = 1.0 / a.get(col, col);
        scale_row(&mut a, col, scale);
        scale_row(&mut inv, col, scale);
        // Eliminate every other row.
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = a.get(row, col);
            if factor == 0.0 {
                continue;
            }
            axpy_row(&mut a, row, col, -factor);
            axpy_row(&mut inv, row, col, -factor);
        }
    }
    Some(inv)
}

fn swap_rows(m: &mut DenseMatrix, i: usize, j: usize) {
    for c in 0..m.cols() {
        let a = m.get(i, c);
        let b = m.get(j, c);
        m.set(i, c, b);
        m.set(j, c, a);
    }
}

fn scale_row(m: &mut DenseMatrix, row: usize, s: f64) {
    for c in 0..m.cols() {
        m.set(row, c, m.get(row, c) * s);
    }
}

/// `row_i += factor * row_j`.
fn axpy_row(m: &mut DenseMatrix, i: usize, j: usize, factor: f64) {
    for c in 0..m.cols() {
        m.set(i, c, m.get(i, c) + factor * m.get(j, c));
    }
}

/// A damping parameter guaranteed to keep every resolvent convergent:
/// `0.9 / (1 + max total degree over all snapshots)`.
pub fn safe_alpha<G: EvolvingGraph>(graph: &G) -> f64 {
    let mats = snapshot_matrices(graph);
    let max_row_sum = mats
        .iter()
        .flat_map(|m| (0..m.rows()).map(move |r| m.row(r).iter().sum::<f64>()))
        .fold(0.0f64, f64::max);
    0.9 / (1.0 + max_row_sum)
}

/// The dynamic communicability matrix `Q` of Grindrod & Higham for damping
/// parameter `alpha`. Returns `None` if any resolvent is singular (i.e.
/// `alpha` is too large for some snapshot).
pub fn dynamic_communicability<G: EvolvingGraph>(graph: &G, alpha: f64) -> Option<DenseMatrix> {
    let mats = snapshot_matrices(graph);
    let n = graph.num_nodes();
    let mut q = DenseMatrix::identity(n);
    for a_t in &mats {
        // I − α A[t]
        let mut m = DenseMatrix::identity(n);
        for r in 0..n {
            for c in 0..n {
                let v = a_t.get(r, c);
                if v != 0.0 {
                    m.add_to(r, c, -alpha * v);
                }
            }
        }
        let resolvent = invert(&m)?;
        q = q.matmul(&resolvent);
    }
    Some(q)
}

/// Row sums of `Q` minus one: how effectively each node *broadcasts* along
/// dynamic walks (Grindrod & Higham's broadcast communicability).
pub fn broadcast_scores<G: EvolvingGraph>(graph: &G, alpha: f64) -> Option<Vec<f64>> {
    let q = dynamic_communicability(graph, alpha)?;
    Some(
        (0..q.rows())
            .map(|r| q.row(r).iter().sum::<f64>() - 1.0)
            .collect(),
    )
}

/// Column sums of `Q` minus one: how effectively each node *receives*.
pub fn receive_scores<G: EvolvingGraph>(graph: &G, alpha: f64) -> Option<Vec<f64>> {
    let q = dynamic_communicability(graph, alpha)?;
    Some(
        (0..q.cols())
            .map(|c| (0..q.rows()).map(|r| q.get(r, c)).sum::<f64>() - 1.0)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph_core::examples::paper_figure1;

    #[test]
    fn invert_recovers_known_inverses() {
        let i = DenseMatrix::identity(4);
        assert_eq!(invert(&i).unwrap(), i);

        let m = DenseMatrix::from_rows(2, 2, vec![2.0, 0.0, 0.0, 4.0]);
        let inv = invert(&m).unwrap();
        assert!((inv.get(0, 0) - 0.5).abs() < 1e-12);
        assert!((inv.get(1, 1) - 0.25).abs() < 1e-12);

        // A · A⁻¹ = I for a non-trivial matrix.
        let m = DenseMatrix::from_rows(3, 3, vec![2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let inv = invert(&m).unwrap();
        let prod = m.matmul(&inv);
        for r in 0..3 {
            for c in 0..3 {
                let expected = if r == c { 1.0 } else { 0.0 };
                assert!((prod.get(r, c) - expected).abs() < 1e-9, "entry ({r},{c})");
            }
        }
    }

    #[test]
    fn singular_matrices_are_rejected() {
        let m = DenseMatrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(invert(&m).is_none());
    }

    #[test]
    fn communicability_counts_the_paper_graphs_dynamic_walks() {
        let g = paper_figure1();
        let alpha = 0.2;
        let q = dynamic_communicability(&g, alpha).unwrap();
        // Expanding Q = Π (I + αA[t] + …): the 1→3 entry collects
        //   α  from the single edge 1→3 at t2,
        //   α² from the dynamic walk 1→2 (t1) then 2→3 (t3),
        // plus higher-order terms that vanish here because each A[t] is
        // nilpotent of index 2.
        let expected_13 = alpha + alpha * alpha;
        assert!(
            (q.get(0, 2) - expected_13).abs() < 1e-9,
            "got {}",
            q.get(0, 2)
        );
        // Note the contrast with the paper's temporal paths: there are TWO
        // temporal paths 1→3 of hop-length 3, but the dynamic-walk model sees
        // one walk of length 1 and one of length 2, because waiting is free.
        let diag_ok = (0..3).all(|i| (q.get(i, i) - 1.0).abs() < 1e-9);
        assert!(diag_ok, "no cycles ⇒ unit diagonal");
    }

    #[test]
    fn broadcast_and_receive_scores_reflect_roles() {
        let g = paper_figure1();
        let alpha = safe_alpha(&g);
        let broadcast = broadcast_scores(&g, alpha).unwrap();
        let receive = receive_scores(&g, alpha).unwrap();
        // Node 1 (index 0) only ever cites outward: top broadcaster, zero receiver.
        assert!(broadcast[0] > broadcast[2]);
        assert!(receive[0].abs() < 1e-12);
        // Node 3 (index 2) only receives.
        assert!(receive[2] > receive[0]);
        assert!(broadcast[2].abs() < 1e-12);
    }

    #[test]
    fn safe_alpha_keeps_every_resolvent_invertible() {
        let g = paper_figure1();
        let alpha = safe_alpha(&g);
        assert!(alpha > 0.0 && alpha < 1.0);
        assert!(dynamic_communicability(&g, alpha).is_some());
    }

    #[test]
    fn too_large_alpha_is_detected_on_singular_resolvents() {
        // A graph whose snapshot has spectral radius 1 (a 2-cycle): α = 1
        // makes I − αA singular.
        let mut g = egraph_core::adjacency::AdjacencyListGraph::directed_with_unit_times(2, 1);
        g.add_edge(
            egraph_core::ids::NodeId(0),
            egraph_core::ids::NodeId(1),
            egraph_core::ids::TimeIndex(0),
        )
        .unwrap();
        g.add_edge(
            egraph_core::ids::NodeId(1),
            egraph_core::ids::NodeId(0),
            egraph_core::ids::TimeIndex(0),
        )
        .unwrap();
        assert!(dynamic_communicability(&g, 1.0).is_none());
        assert!(dynamic_communicability(&g, safe_alpha(&g)).is_some());
    }
}
