//! Earliest-arrival ("foremost") traversal and Tang-style temporal distance.
//!
//! The paper is explicit that its distance (Definition 6) counts *hops over
//! static and causal edges* and therefore "differs from the notion of
//! temporal distance in the work of Tang and coworkers, which is the number
//! of time steps between t and s (inclusive)". This module implements that
//! alternative notion so the two can be compared on the same graphs:
//!
//! * [`earliest_arrival`] — for every node, the earliest snapshot at which a
//!   temporal path from the root can arrive there (the "foremost" time);
//! * [`temporal_distance_steps`] — Tang's distance: number of time steps from
//!   the root's snapshot to the earliest arrival, inclusive;
//! * [`ForemostResult`] — both quantities for all nodes, computed in a single
//!   time-ordered sweep.
//!
//! The sweep processes snapshots in increasing order and, inside each
//! snapshot, runs a static BFS from all nodes already "infected" (reached at
//! an earlier or equal snapshot). This is the standard earliest-arrival
//! algorithm for interval-less temporal graphs and costs `O(|Ẽ| + N·n)`.

use crate::graph::EvolvingGraph;
use crate::ids::{NodeId, TemporalNode, TimeIndex};

/// Earliest-arrival information from a single root.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ForemostResult {
    root: TemporalNode,
    /// `arrival[v]` = earliest snapshot index at which node `v` can be
    /// reached, or `None` if unreachable.
    arrival: Vec<Option<TimeIndex>>,
}

impl ForemostResult {
    /// Builds a result from an explicit per-node arrival vector (`arrival[v]`
    /// = arrival snapshot of node `v`, `None` if unreachable). Used by query
    /// layers that run the sweep on a composed view (time window, reversed
    /// time) and re-express the arrivals in the coordinates of the underlying
    /// graph — in which case an arrival may legitimately *precede* the root's
    /// snapshot (a reversed sweep reports latest departures).
    pub fn from_arrivals(root: TemporalNode, arrival: Vec<Option<TimeIndex>>) -> Self {
        ForemostResult { root, arrival }
    }

    /// The root of the sweep.
    pub fn root(&self) -> TemporalNode {
        self.root
    }

    /// The earliest arrival snapshot of `v`, if reachable.
    pub fn arrival(&self, v: NodeId) -> Option<TimeIndex> {
        self.arrival.get(v.index()).copied().flatten()
    }

    /// The raw per-node arrival vector (`arrivals()[v]` = arrival snapshot of
    /// node `v`, `None` if unreachable), indexed by node identifier.
    pub fn arrivals(&self) -> &[Option<TimeIndex>] {
        &self.arrival
    }

    /// Tang-style temporal distance to `v`: the number of time steps from the
    /// root's snapshot to the earliest arrival, inclusive. The root itself
    /// has distance 1 (one time step), matching the "inclusive" convention.
    ///
    /// Returns `None` if `v` is unreachable, and also if its arrival
    /// *precedes* the root's snapshot — possible for results built with
    /// [`ForemostResult::from_arrivals`] from a time-reversed sweep, where
    /// Tang's forward step count is undefined (previously this underflowed).
    pub fn temporal_distance_steps(&self, v: NodeId) -> Option<u32> {
        self.arrival(v)
            .and_then(|t| t.index().checked_sub(self.root.time.index()))
            .map(|steps| steps as u32 + 1)
    }

    /// All reachable nodes with their arrival snapshots.
    pub fn reachable(&self) -> Vec<(NodeId, TimeIndex)> {
        self.arrival
            .iter()
            .enumerate()
            .filter_map(|(v, t)| t.map(|t| (NodeId::from_index(v), t)))
            .collect()
    }

    /// Number of reachable nodes (including the root).
    pub fn num_reachable(&self) -> usize {
        self.arrival.iter().filter(|t| t.is_some()).count()
    }

    /// Re-expresses this result for a grown node universe (the *re-dimension*
    /// repair of the cache-invalidation matrix): existing arrivals keep their
    /// values — they are snapshot indices, not array positions, so appended
    /// snapshots cannot move them — and new nodes start unreachable.
    ///
    /// # Panics
    /// Debug-asserts that the node universe does not shrink.
    pub fn redimensioned(&self, num_nodes: usize) -> Self {
        debug_assert!(num_nodes >= self.arrival.len());
        let mut arrival = self.arrival.clone();
        arrival.resize(num_nodes, None);
        ForemostResult {
            root: self.root,
            arrival,
        }
    }
}

/// Computes earliest arrivals from `root` to every node.
///
/// Unlike [`crate::bfs::bfs`], inactivity of the root is tolerated here (an
/// inactive root simply reaches only itself), because the foremost sweep is
/// defined node-wise rather than over active temporal nodes; the comparison
/// tests restrict themselves to active roots where both notions apply.
pub fn earliest_arrival<G: EvolvingGraph>(graph: &G, root: TemporalNode) -> ForemostResult {
    let n = graph.num_nodes();
    let n_t = graph.num_timestamps();
    let mut arrival: Vec<Option<TimeIndex>> = vec![None; n];
    if root.node.index() < n && root.time.index() < n_t {
        arrival[root.node.index()] = Some(root.time);
    } else {
        return ForemostResult { root, arrival };
    }

    // Sweep snapshots forward from the root's time. Inside a snapshot, nodes
    // reached at or before this snapshot can spread along its static edges
    // (multi-hop within the snapshot is allowed — those are same-time static
    // hops in the temporal-path sense).
    for t in root.time.index()..n_t {
        let ti = TimeIndex::from_index(t);
        // Seed: every node already reached by now.
        let mut frontier: Vec<NodeId> = arrival
            .iter()
            .enumerate()
            .filter(|(_, a)| a.map(|at| at <= ti).unwrap_or(false))
            .map(|(v, _)| NodeId::from_index(v))
            .collect();
        while let Some(u) = frontier.pop() {
            graph.for_each_static_out(u, ti, &mut |w| {
                let slot = &mut arrival[w.index()];
                if slot.map(|at| at > ti).unwrap_or(true) {
                    *slot = Some(ti);
                    frontier.push(w);
                }
            });
        }
    }
    ForemostResult { root, arrival }
}

/// Tang-style temporal distance between two nodes given a starting snapshot:
/// the number of time steps (inclusive) until `dst` can first be reached from
/// `(src, start)`.
pub fn temporal_distance_steps<G: EvolvingGraph>(
    graph: &G,
    src: NodeId,
    start: TimeIndex,
    dst: NodeId,
) -> Option<u32> {
    earliest_arrival(graph, TemporalNode::new(src, start)).temporal_distance_steps(dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use crate::examples::{paper_figure1, staircase};

    #[test]
    fn earliest_arrivals_on_the_paper_example() {
        let g = paper_figure1();
        let res = earliest_arrival(&g, TemporalNode::from_raw(0, 0));
        // Node 2 (paper 3) is first reachable at t2 via 1 → 3.
        assert_eq!(res.arrival(NodeId(2)), Some(TimeIndex(1)));
        // Node 1 (paper 2) is reached immediately at t1.
        assert_eq!(res.arrival(NodeId(1)), Some(TimeIndex(0)));
        assert_eq!(res.arrival(NodeId(0)), Some(TimeIndex(0)));
        assert_eq!(res.num_reachable(), 3);
    }

    #[test]
    fn tang_distance_differs_from_hop_distance() {
        // The paper's point: the two notions measure different things.
        let g = paper_figure1();
        let root = TemporalNode::from_raw(0, 0);
        let hops = bfs(&g, root).unwrap();
        let foremost = earliest_arrival(&g, root);
        // Hop distance to (3, t2) is 2 (causal + static); Tang distance to
        // node 3 is 2 time steps (t1 and t2, inclusive).
        assert_eq!(hops.distance(TemporalNode::from_raw(2, 1)), Some(2));
        assert_eq!(foremost.temporal_distance_steps(NodeId(2)), Some(2));
        // Hop distance to (2, t3) is 2, but Tang distance to node 2 is 1
        // (already reached in the first time step).
        assert_eq!(hops.distance(TemporalNode::from_raw(1, 2)), Some(2));
        assert_eq!(foremost.temporal_distance_steps(NodeId(1)), Some(1));
    }

    #[test]
    fn foremost_reachability_equals_bfs_node_reachability() {
        // The *set* of reachable node identifiers must agree with Algorithm 1
        // even though the distances differ.
        let g = paper_figure1();
        for &root in &g.active_nodes() {
            let via_bfs: std::collections::BTreeSet<NodeId> = bfs(&g, root)
                .unwrap()
                .reached_node_ids()
                .into_iter()
                .collect();
            let via_foremost: std::collections::BTreeSet<NodeId> = earliest_arrival(&g, root)
                .reachable()
                .into_iter()
                .map(|(v, _)| v)
                .collect();
            assert_eq!(via_bfs, via_foremost, "root {root:?}");
        }
    }

    #[test]
    fn staircase_arrivals_advance_one_snapshot_per_node() {
        let g = staircase(5);
        let res = earliest_arrival(&g, TemporalNode::from_raw(0, 0));
        for i in 1..5u32 {
            assert_eq!(res.arrival(NodeId(i)), Some(TimeIndex(i - 1)));
            assert_eq!(res.temporal_distance_steps(NodeId(i)), Some(i));
        }
    }

    #[test]
    fn multi_hop_within_one_snapshot_is_allowed() {
        // 0 → 1 and 1 → 2 both at t0: node 2 is reachable already at t0.
        let mut g = crate::adjacency::AdjacencyListGraph::directed_with_unit_times(3, 2);
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), TimeIndex(0)).unwrap();
        let res = earliest_arrival(&g, TemporalNode::from_raw(0, 0));
        assert_eq!(res.arrival(NodeId(2)), Some(TimeIndex(0)));
        assert_eq!(
            temporal_distance_steps(&g, NodeId(0), TimeIndex(0), NodeId(2)),
            Some(1)
        );
    }

    #[test]
    fn out_of_range_roots_reach_nothing() {
        let g = paper_figure1();
        let res = earliest_arrival(&g, TemporalNode::from_raw(9, 0));
        assert_eq!(res.num_reachable(), 0);
    }

    #[test]
    fn arrivals_before_the_root_snapshot_yield_no_step_count() {
        // Regression: with an arrival earlier than the root's snapshot (as a
        // reversed sweep produces once mapped back to original coordinates),
        // `t.index() - root.time.index()` used to underflow — panicking in
        // debug builds and wrapping to a huge step count in release builds.
        let root = TemporalNode::from_raw(0, 2);
        let res =
            ForemostResult::from_arrivals(root, vec![Some(TimeIndex(2)), Some(TimeIndex(0)), None]);
        assert_eq!(res.temporal_distance_steps(NodeId(0)), Some(1));
        assert_eq!(res.temporal_distance_steps(NodeId(1)), None);
        assert_eq!(res.temporal_distance_steps(NodeId(2)), None);
    }

    #[test]
    fn from_arrivals_round_trips_the_sweep() {
        let g = paper_figure1();
        let root = TemporalNode::from_raw(0, 0);
        let swept = earliest_arrival(&g, root);
        let arrivals: Vec<Option<TimeIndex>> = (0..g.num_nodes())
            .map(|v| swept.arrival(NodeId::from_index(v)))
            .collect();
        let rebuilt = ForemostResult::from_arrivals(root, arrivals);
        assert_eq!(rebuilt.reachable(), swept.reachable());
        assert_eq!(rebuilt.num_reachable(), swept.num_reachable());
    }
}
