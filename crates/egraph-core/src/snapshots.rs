//! [`SnapshotSequence`]: an evolving graph stored literally as the paper's
//! Definition 1 — a vector of static graphs with time labels.
//!
//! This representation is convenient when snapshots arrive whole (one static
//! graph per epoch, as in citation networks aggregated by year) and when the
//! per-snapshot adjacency matrices `A[t]` of Section III are needed: each
//! snapshot is already an independent static graph.
//!
//! Activeness information is derived lazily and cached, so query performance
//! matches [`crate::adjacency::AdjacencyListGraph`] once the cache is warm.

use crate::error::{GraphError, Result};
use crate::graph::EvolvingGraph;
use crate::ids::{NodeId, TimeIndex, Timestamp};
use crate::static_graph::StaticGraph;

/// One snapshot of an evolving graph: a static graph plus its time label.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Snapshot {
    /// The time label `t`.
    pub label: Timestamp,
    /// The static graph `G[t]`.
    pub graph: StaticGraph,
}

/// An evolving graph as a time-ordered sequence of static graphs.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SnapshotSequence {
    snapshots: Vec<Snapshot>,
    num_nodes: usize,
    directed: bool,
    /// Cached sorted active snapshot indices per node.
    active: Vec<Vec<TimeIndex>>,
    num_static_edges: usize,
}

impl SnapshotSequence {
    /// Builds a snapshot sequence from `(label, static graph)` pairs.
    ///
    /// Labels must be strictly increasing. The node universe is the maximum
    /// node universe over all snapshots.
    pub fn new(directed: bool, snapshots: Vec<(Timestamp, StaticGraph)>) -> Result<Self> {
        for (i, w) in snapshots.windows(2).enumerate() {
            if w[0].0 >= w[1].0 {
                return Err(GraphError::UnsortedTimestamps { position: i + 1 });
            }
        }
        let num_nodes = snapshots
            .iter()
            .map(|(_, g)| g.num_nodes())
            .max()
            .unwrap_or(0);
        let num_static_edges = snapshots.iter().map(|(_, g)| g.num_edges()).sum();
        let snapshots: Vec<Snapshot> = snapshots
            .into_iter()
            .map(|(label, graph)| Snapshot { label, graph })
            .collect();

        // Precompute activeness: a node is active at t iff it has at least
        // one incident edge (to a *different* node) in snapshot t.
        let mut active = vec![Vec::new(); num_nodes];
        for (ti, snap) in snapshots.iter().enumerate() {
            let t = TimeIndex::from_index(ti);
            // Indexed on purpose: the loop is bounded by the snapshot's node
            // count, which may be smaller than the universe `active` spans.
            #[allow(clippy::needless_range_loop)]
            for v in 0..snap.graph.num_nodes() {
                let incident = snap
                    .graph
                    .out_neighbors(v)
                    .iter()
                    .chain(snap.graph.in_neighbors(v).iter())
                    .any(|&w| w as usize != v);
                if incident {
                    active[v].push(t);
                }
            }
        }

        Ok(SnapshotSequence {
            snapshots,
            num_nodes,
            directed,
            active,
            num_static_edges,
        })
    }

    /// Builds a directed sequence from `(src, dst, time_index)` triples.
    pub fn from_indexed_edges(
        num_nodes: usize,
        num_timestamps: usize,
        edges: &[(u32, u32, u32)],
    ) -> Result<Self> {
        let mut graphs: Vec<StaticGraph> = (0..num_timestamps)
            .map(|_| {
                let mut g = StaticGraph::new(num_nodes);
                g.grow(num_nodes);
                g
            })
            .collect();
        for &(u, v, t) in edges {
            if t as usize >= num_timestamps {
                return Err(GraphError::TimeOutOfRange {
                    time: TimeIndex(t),
                    num_timestamps,
                });
            }
            if u == v {
                return Err(GraphError::SelfLoop {
                    node: NodeId(u),
                    time: TimeIndex(t),
                });
            }
            graphs[t as usize].add_edge(u as usize, v as usize);
        }
        Self::new(
            true,
            graphs
                .into_iter()
                .enumerate()
                .map(|(i, g)| (i as Timestamp, g))
                .collect(),
        )
    }

    /// Access to one snapshot.
    pub fn snapshot(&self, t: TimeIndex) -> &Snapshot {
        &self.snapshots[t.index()]
    }

    /// All snapshots in time order.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// The per-snapshot static graph (the `G[t]` of Definition 1).
    pub fn static_graph_at(&self, t: TimeIndex) -> &StaticGraph {
        &self.snapshots[t.index()].graph
    }
}

impl EvolvingGraph for SnapshotSequence {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_timestamps(&self) -> usize {
        self.snapshots.len()
    }

    fn timestamp(&self, t: TimeIndex) -> Timestamp {
        self.snapshots[t.index()].label
    }

    fn is_directed(&self) -> bool {
        self.directed
    }

    fn num_static_edges(&self) -> usize {
        self.num_static_edges
    }

    fn for_each_static_out(&self, v: NodeId, t: TimeIndex, f: &mut dyn FnMut(NodeId)) {
        let g = &self.snapshots[t.index()].graph;
        if v.index() < g.num_nodes() {
            for &w in g.out_neighbors(v.index()) {
                f(NodeId(w));
            }
            if !self.directed {
                for &w in g.in_neighbors(v.index()) {
                    f(NodeId(w));
                }
            }
        }
    }

    fn for_each_static_in(&self, v: NodeId, t: TimeIndex, f: &mut dyn FnMut(NodeId)) {
        let g = &self.snapshots[t.index()].graph;
        if v.index() < g.num_nodes() {
            for &w in g.in_neighbors(v.index()) {
                f(NodeId(w));
            }
            if !self.directed {
                for &w in g.out_neighbors(v.index()) {
                    f(NodeId(w));
                }
            }
        }
    }

    fn for_each_active_time(&self, v: NodeId, f: &mut dyn FnMut(TimeIndex)) {
        if v.index() < self.active.len() {
            for &t in &self.active[v.index()] {
                f(t);
            }
        }
    }

    fn is_active(&self, v: NodeId, t: TimeIndex) -> bool {
        v.index() < self.active.len() && self.active[v.index()].binary_search(&t).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use crate::ids::TemporalNode;

    /// The Figure 1 example expressed as a snapshot sequence.
    fn figure1_snapshots() -> SnapshotSequence {
        let mut g1 = StaticGraph::new(3);
        g1.add_edge(0, 1);
        let mut g2 = StaticGraph::new(3);
        g2.add_edge(0, 2);
        let mut g3 = StaticGraph::new(3);
        g3.add_edge(1, 2);
        SnapshotSequence::new(true, vec![(1, g1), (2, g2), (3, g3)]).unwrap()
    }

    #[test]
    fn construction_computes_activeness() {
        let g = figure1_snapshots();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_static_edges(), 3);
        assert!(g.is_active(NodeId(0), TimeIndex(0)));
        assert!(!g.is_active(NodeId(2), TimeIndex(0)));
        assert_eq!(g.active_times(NodeId(2)), vec![TimeIndex(1), TimeIndex(2)]);
    }

    #[test]
    fn rejects_unsorted_labels() {
        let err = SnapshotSequence::new(
            true,
            vec![(3, StaticGraph::new(1)), (2, StaticGraph::new(1))],
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::UnsortedTimestamps { .. }));
    }

    #[test]
    fn bfs_agrees_with_adjacency_list_representation() {
        let snap = figure1_snapshots();
        let adj = crate::examples::paper_figure1();
        let root = TemporalNode::from_raw(0, 0);
        let a = bfs(&snap, root).unwrap();
        let b = bfs(&adj, root).unwrap();
        assert_eq!(a.as_flat_slice(), b.as_flat_slice());
    }

    #[test]
    fn from_indexed_edges_matches_manual_construction() {
        let g =
            SnapshotSequence::from_indexed_edges(3, 3, &[(0, 1, 0), (0, 2, 1), (1, 2, 2)]).unwrap();
        let manual = figure1_snapshots();
        assert_eq!(g.num_static_edges(), manual.num_static_edges());
        assert_eq!(g.active_nodes(), manual.active_nodes());
    }

    #[test]
    fn from_indexed_edges_rejects_bad_input() {
        assert!(matches!(
            SnapshotSequence::from_indexed_edges(3, 2, &[(0, 1, 5)]).unwrap_err(),
            GraphError::TimeOutOfRange { .. }
        ));
        assert!(matches!(
            SnapshotSequence::from_indexed_edges(3, 2, &[(1, 1, 0)]).unwrap_err(),
            GraphError::SelfLoop { .. }
        ));
    }

    #[test]
    fn undirected_sequence_reports_edges_both_ways() {
        let mut g0 = StaticGraph::new(2);
        g0.add_edge(0, 1);
        let seq = SnapshotSequence::new(false, vec![(0, g0)]).unwrap();
        assert_eq!(
            seq.static_out_neighbors(NodeId(1), TimeIndex(0)),
            vec![NodeId(0)]
        );
        assert!(seq.is_active(NodeId(1), TimeIndex(0)));
    }

    #[test]
    fn snapshot_accessors_expose_static_graphs() {
        let g = figure1_snapshots();
        assert_eq!(g.snapshot(TimeIndex(0)).label, 1);
        assert!(g.static_graph_at(TimeIndex(2)).has_edge(1, 2));
        assert_eq!(g.snapshots().len(), 3);
    }
}
