//! Whole-graph metrics built on the evolving-graph BFS.
//!
//! Once the BFS of Algorithm 1 is available, the classical distance-based
//! graph metrics generalise mechanically by replacing "shortest path" with
//! "shortest temporal path" under the paper's distance (Definition 6 — hops
//! over static *and* causal edges). This module provides the ones that are
//! useful when characterising benchmark workloads and citation networks:
//!
//! * per-root reach counts and eccentricities,
//! * the temporal diameter (largest finite eccentricity),
//! * the reachability ratio (fraction of ordered active-node pairs connected
//!   by some temporal path), and
//! * average temporal distance over reachable pairs.
//!
//! All of them are exact and run one BFS per active root (`O(|V| (|E|+|V|))`
//! total); [`GraphMetrics::compute_sampled`] bounds the number of roots for
//! large graphs, and computation is parallelised over roots with rayon.

use rayon::prelude::*;

use crate::bfs::bfs;
use crate::graph::EvolvingGraph;
use crate::ids::TemporalNode;

/// Distance-based summary statistics of an evolving graph.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GraphMetrics {
    /// Number of active temporal nodes used as BFS roots.
    pub num_roots: usize,
    /// Number of active temporal nodes in the graph.
    pub num_active_nodes: usize,
    /// Largest finite temporal eccentricity (the temporal diameter). `None`
    /// when no root reaches anything beyond itself.
    pub diameter: Option<u32>,
    /// Mean temporal distance over all reachable ordered pairs (excluding
    /// the trivial root→root pair).
    pub mean_distance: f64,
    /// Fraction of ordered pairs `(root, other active node)` with a temporal
    /// path from the root to the other node.
    pub reachability_ratio: f64,
    /// Mean number of temporal nodes reached per root (excluding the root).
    pub mean_reach: f64,
    /// The root with the largest reach and its reach count.
    pub max_reach: Option<(TemporalNode, usize)>,
}

impl GraphMetrics {
    /// Computes exact metrics using every active temporal node as a root.
    pub fn compute<G: EvolvingGraph + Sync>(graph: &G) -> Self {
        let roots = graph.active_nodes();
        Self::from_roots(graph, &roots)
    }

    /// Computes metrics using at most `max_roots` active roots (the first
    /// ones in time-major order), for graphs where the exact all-pairs sweep
    /// is too expensive.
    pub fn compute_sampled<G: EvolvingGraph + Sync>(graph: &G, max_roots: usize) -> Self {
        let mut roots = graph.active_nodes();
        roots.truncate(max_roots);
        Self::from_roots(graph, &roots)
    }

    fn from_roots<G: EvolvingGraph + Sync>(graph: &G, roots: &[TemporalNode]) -> Self {
        let num_active_nodes = graph.num_active_nodes();

        // One BFS per root, in parallel; fold the per-root summaries.
        #[derive(Default)]
        struct Acc {
            reach_sum: usize,
            dist_sum: u64,
            pair_count: u64,
            ecc_max: Option<u32>,
            best: Option<(TemporalNode, usize)>,
        }
        let acc = roots
            .par_iter()
            .map(|&root| {
                let map = bfs(graph, root).expect("roots are active by construction");
                let reach = map.num_reached() - 1;
                let ecc = map.max_distance();
                let dist_sum: u64 = map.reached().iter().map(|&(_, d)| d as u64).sum();
                Acc {
                    reach_sum: reach,
                    dist_sum,
                    pair_count: reach as u64,
                    ecc_max: if reach > 0 { Some(ecc) } else { None },
                    best: Some((root, reach)),
                }
            })
            .reduce(Acc::default, |a, b| Acc {
                reach_sum: a.reach_sum + b.reach_sum,
                dist_sum: a.dist_sum + b.dist_sum,
                pair_count: a.pair_count + b.pair_count,
                ecc_max: match (a.ecc_max, b.ecc_max) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                },
                best: match (a.best, b.best) {
                    (Some(x), Some(y)) => Some(if x.1 >= y.1 { x } else { y }),
                    (x, y) => x.or(y),
                },
            });

        let possible_pairs = roots.len() as f64 * (num_active_nodes.saturating_sub(1)) as f64;
        GraphMetrics {
            num_roots: roots.len(),
            num_active_nodes,
            diameter: acc.ecc_max,
            mean_distance: if acc.pair_count == 0 {
                0.0
            } else {
                acc.dist_sum as f64 / acc.pair_count as f64
            },
            reachability_ratio: if possible_pairs == 0.0 {
                0.0
            } else {
                acc.pair_count as f64 / possible_pairs
            },
            mean_reach: if roots.is_empty() {
                0.0
            } else {
                acc.reach_sum as f64 / roots.len() as f64
            },
            max_reach: acc.best.filter(|&(_, r)| r > 0),
        }
    }
}

/// The temporal eccentricity of a single active node: the largest finite
/// distance from it. Returns `None` if the node is inactive.
pub fn eccentricity<G: EvolvingGraph>(graph: &G, root: TemporalNode) -> Option<u32> {
    bfs(graph, root).ok().map(|m| m.max_distance())
}

/// The number of temporal nodes reachable from each active node, as
/// `(root, count)` pairs — the "reach profile" of the whole graph.
pub fn reach_counts<G: EvolvingGraph + Sync>(graph: &G) -> Vec<(TemporalNode, usize)> {
    graph
        .active_nodes()
        .par_iter()
        .map(|&root| {
            let count = bfs(graph, root).map(|m| m.num_reached() - 1).unwrap_or(0);
            (root, count)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{paper_figure1, staircase};

    #[test]
    fn metrics_of_the_paper_example() {
        let g = paper_figure1();
        let m = GraphMetrics::compute(&g);
        assert_eq!(m.num_roots, 6);
        assert_eq!(m.num_active_nodes, 6);
        // The longest shortest temporal path is (1,t1) → … → (3,t3), 3 hops.
        assert_eq!(m.diameter, Some(3));
        // (1,t1) reaches all five other active nodes — the maximum.
        assert_eq!(m.max_reach.unwrap().1, 5);
        assert!(m.reachability_ratio > 0.0 && m.reachability_ratio <= 1.0);
        assert!(m.mean_distance >= 1.0);
    }

    #[test]
    fn staircase_diameter_matches_closed_form() {
        let n = 6;
        let g = staircase(n);
        let m = GraphMetrics::compute(&g);
        // From (0, t0) to (n-1, t_{n-2}): (n-1) static + (n-2) causal hops.
        assert_eq!(m.diameter, Some((2 * n - 3) as u32));
    }

    #[test]
    fn eccentricity_and_reach_counts_are_consistent_with_bfs() {
        let g = paper_figure1();
        assert_eq!(eccentricity(&g, TemporalNode::from_raw(0, 0)), Some(3));
        assert_eq!(eccentricity(&g, TemporalNode::from_raw(2, 2)), Some(0));
        assert_eq!(eccentricity(&g, TemporalNode::from_raw(2, 0)), None);

        let counts = reach_counts(&g);
        assert_eq!(counts.len(), 6);
        let root_count = counts
            .iter()
            .find(|&&(tn, _)| tn == TemporalNode::from_raw(0, 0))
            .unwrap()
            .1;
        assert_eq!(root_count, 5);
    }

    #[test]
    fn sampled_metrics_use_fewer_roots() {
        let g = paper_figure1();
        let m = GraphMetrics::compute_sampled(&g, 2);
        assert_eq!(m.num_roots, 2);
        assert_eq!(m.num_active_nodes, 6);
    }

    #[test]
    fn empty_graph_metrics_are_all_zero() {
        let g = crate::adjacency::AdjacencyListGraph::directed_with_unit_times(3, 2);
        let m = GraphMetrics::compute(&g);
        assert_eq!(m.num_roots, 0);
        assert_eq!(m.diameter, None);
        assert_eq!(m.mean_reach, 0.0);
        assert_eq!(m.max_reach, None);
    }
}
