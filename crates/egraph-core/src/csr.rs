//! [`CsrAdjacency`]: the CSR-flattened serve-path representation.
//!
//! [`AdjacencyListGraph`](crate::adjacency::AdjacencyListGraph) stores
//! neighbors as `Vec<Vec<Vec<NodeId>>>` — three pointer hops and one heap
//! allocation *per (node, snapshot) pair*, which is what a mutable builder
//! wants but not what a serve path wants. Theorem 2's `O(|E| + |V|)` bound
//! only talks about how many list items a traversal inspects; how fast those
//! inspections run is a memory-layout question, and BFS over thousands of
//! tiny heap-scattered `Vec`s is bound by cache misses, not arithmetic.
//!
//! `CsrAdjacency` flattens each snapshot's adjacency into **one contiguous
//! neighbor pool** shared by the whole graph, addressed by per-snapshot
//! offset arrays (the classic compressed-sparse-row layout, applied per
//! snapshot):
//!
//! ```text
//! out_pool:      [ ...snapshot 0 neighbors... | ...snapshot 1... | ... ]
//! out_offsets[t]: num_nodes_at_seal(t) + 1 absolute offsets into out_pool
//! out_slice(v,t) = out_pool[out_offsets[t][v] .. out_offsets[t][v+1]]
//! ```
//!
//! Because the evolving-graph model is append-only in time (Definition 1:
//! labels strictly increase), a sealed snapshot's neighbor lists never change
//! — so appending snapshot `t+1` appends one contiguous region to the pool
//! and one offset row, and every previously returned layout stays valid.
//! [`CsrAdjacency::append_snapshot`] is that sealed-append path; the
//! `egraph-stream` crate's `LiveGraph` builds its serve graph with it, one
//! seal at a time, and every engine (BFS, parallel BFS, the foremost sweep,
//! the resumable extensions) traverses the CSR layout through the ordinary
//! [`EvolvingGraph`] trait — the differential suites pin the answers to the
//! nested-`Vec` layout, and the `serving_throughput` bench pins the work
//! parity (identical [`CountingView`](crate::instrument::CountingView)
//! counters) and records the wall-clock gap.
//!
//! Node growth composes with sealing: growing the universe only affects
//! *future* snapshots (a node cannot retroactively have had edges), so old
//! offset rows keep their sealed length and lookups beyond a row's end
//! simply report no neighbors.

use crate::error::{GraphError, Result};
use crate::graph::EvolvingGraph;
use crate::ids::{NodeId, TemporalNode, TimeIndex, Timestamp};

/// An evolving graph whose per-snapshot adjacency is stored in compressed
/// sparse rows: one contiguous neighbor pool plus per-snapshot offset
/// arrays. Built either all at once ([`CsrAdjacency::from_graph`]) or
/// incrementally, one sealed snapshot at a time
/// ([`CsrAdjacency::append_snapshot`]).
#[derive(Clone, Debug, Default)]
pub struct CsrAdjacency {
    timestamps: Vec<Timestamp>,
    num_nodes: usize,
    directed: bool,
    /// `out_offsets[t]` holds `n_t + 1` absolute offsets into [`Self::out_pool`],
    /// where `n_t` is the node-universe size when snapshot `t` was sealed.
    out_offsets: Vec<Vec<u32>>,
    /// All out-neighbor lists, snapshot-major then node-major — contiguous.
    out_pool: Vec<NodeId>,
    /// Mirror of the out structures for in-neighbors; empty when undirected.
    in_offsets: Vec<Vec<u32>>,
    in_pool: Vec<NodeId>,
    /// `active[v]` = sorted snapshot indices at which `v` is active.
    active: Vec<Vec<TimeIndex>>,
    num_static_edges: usize,
}

impl CsrAdjacency {
    /// An empty graph over `num_nodes` nodes with no snapshot sealed yet.
    pub fn new(num_nodes: usize, directed: bool) -> Self {
        CsrAdjacency {
            timestamps: Vec::new(),
            num_nodes,
            directed,
            out_offsets: Vec::new(),
            out_pool: Vec::new(),
            in_offsets: Vec::new(),
            in_pool: Vec::new(),
            active: vec![Vec::new(); num_nodes],
            num_static_edges: 0,
        }
    }

    /// Flattens any evolving graph into the CSR layout, snapshot by
    /// snapshot. Neighbor lists preserve the source graph's enumeration
    /// order, so traversal answers (parents and tie-breaks included) are
    /// identical.
    pub fn from_graph<G: EvolvingGraph>(graph: &G) -> Self {
        let num_nodes = graph.num_nodes();
        let directed = graph.is_directed();
        let mut csr = CsrAdjacency::new(num_nodes, directed);
        for t in 0..graph.num_timestamps() {
            let t = TimeIndex::from_index(t);
            // Copy the enumerated lists verbatim so neighbor order — and
            // with it every order-dependent answer (BFS-tree parents) — is
            // preserved exactly.
            let mut offsets = Vec::with_capacity(num_nodes + 1);
            offsets.push(pool_offset(csr.out_pool.len()));
            for v in 0..num_nodes {
                graph.for_each_static_out(NodeId::from_index(v), t, &mut |w| csr.out_pool.push(w));
                offsets.push(pool_offset(csr.out_pool.len()));
            }
            let out_added = (offsets[num_nodes] - offsets[0]) as usize;
            csr.out_offsets.push(offsets);
            if directed {
                let mut offsets = Vec::with_capacity(num_nodes + 1);
                offsets.push(pool_offset(csr.in_pool.len()));
                for v in 0..num_nodes {
                    graph
                        .for_each_static_in(NodeId::from_index(v), t, &mut |u| csr.in_pool.push(u));
                    offsets.push(pool_offset(csr.in_pool.len()));
                }
                csr.in_offsets.push(offsets);
            }
            for v in 0..num_nodes {
                let v = NodeId::from_index(v);
                if graph.is_active(v, t) {
                    csr.active[v.index()].push(t);
                }
            }
            // Undirected graphs report each static edge from both ends.
            csr.num_static_edges += if directed { out_added } else { out_added / 2 };
            csr.timestamps.push(graph.timestamp(t));
        }
        csr
    }

    /// The time label of the last sealed snapshot, if any.
    pub fn last_timestamp(&self) -> Option<Timestamp> {
        self.timestamps.last().copied()
    }

    /// Grows the node universe to at least `num_nodes` nodes. Only future
    /// snapshots can have edges at the new nodes; sealed offset rows are
    /// untouched (lookups past a sealed row's end report no neighbors).
    pub fn grow_nodes(&mut self, num_nodes: usize) {
        if num_nodes > self.num_nodes {
            self.active.resize(num_nodes, Vec::new());
            self.num_nodes = num_nodes;
        }
    }

    /// Appends one sealed snapshot: label `label`, static edges `edges`
    /// (each `(src, dst)`; for undirected graphs each edge is listed once
    /// and stored from both end points). This is the live serve path —
    /// counting sort into the contiguous pool, `O(|edges| + num_nodes)`.
    ///
    /// # Errors
    /// [`GraphError::UnsortedTimestamps`] if `label` is not strictly later
    /// than the last sealed label, [`GraphError::SelfLoop`] /
    /// [`GraphError::NodeOutOfRange`] for invalid edges. The graph is left
    /// unchanged on error.
    pub fn append_snapshot(
        &mut self,
        label: Timestamp,
        edges: &[(NodeId, NodeId)],
    ) -> Result<TimeIndex> {
        if let Some(last) = self.last_timestamp() {
            if label <= last {
                return Err(GraphError::UnsortedTimestamps {
                    position: self.timestamps.len(),
                });
            }
        }
        let t = TimeIndex::from_index(self.timestamps.len());
        for &(u, v) in edges {
            if u == v {
                return Err(GraphError::SelfLoop { node: u, time: t });
            }
            for x in [u, v] {
                if x.index() >= self.num_nodes {
                    return Err(GraphError::NodeOutOfRange {
                        node: x,
                        num_nodes: self.num_nodes,
                    });
                }
            }
        }
        // Offsets are u32; validate before any mutation so the counting
        // sort below cannot silently wrap into corrupt slice bounds.
        let out_added = if self.directed {
            edges.len()
        } else {
            2 * edges.len()
        };
        check_offset_headroom(self.out_pool.len(), out_added);
        if self.directed {
            check_offset_headroom(self.in_pool.len(), edges.len());
        }

        // Out lists: counting sort. Undirected graphs store each edge from
        // both end points, exactly like the nested layout's `add_edge`.
        let base = self.out_pool.len() as u32;
        let mut offsets = vec![0u32; self.num_nodes + 1];
        for &(u, v) in edges {
            offsets[u.index() + 1] += 1;
            if !self.directed {
                offsets[v.index() + 1] += 1;
            }
        }
        for i in 0..self.num_nodes {
            offsets[i + 1] += offsets[i];
        }
        let added = offsets[self.num_nodes] as usize;
        let mut cursor = offsets.clone();
        self.out_pool.resize(self.out_pool.len() + added, NodeId(0));
        for &(u, v) in edges {
            self.out_pool[(base + cursor[u.index()]) as usize] = v;
            cursor[u.index()] += 1;
            if !self.directed {
                self.out_pool[(base + cursor[v.index()]) as usize] = u;
                cursor[v.index()] += 1;
            }
        }
        for o in &mut offsets {
            *o += base;
        }
        self.out_offsets.push(offsets);

        // In lists mirror the out lists for directed graphs.
        if self.directed {
            let base = self.in_pool.len() as u32;
            let mut offsets = vec![0u32; self.num_nodes + 1];
            for &(_, v) in edges {
                offsets[v.index() + 1] += 1;
            }
            for i in 0..self.num_nodes {
                offsets[i + 1] += offsets[i];
            }
            let added = offsets[self.num_nodes] as usize;
            let mut cursor = offsets.clone();
            self.in_pool.resize(self.in_pool.len() + added, NodeId(0));
            for &(u, v) in edges {
                self.in_pool[(base + cursor[v.index()]) as usize] = u;
                cursor[v.index()] += 1;
            }
            for o in &mut offsets {
                *o += base;
            }
            self.in_offsets.push(offsets);
        }

        // Activeness: `t` is strictly later than every recorded index, so
        // appending keeps each node's list sorted.
        for &(u, v) in edges {
            for x in [u, v] {
                let times = &mut self.active[x.index()];
                if times.last() != Some(&t) {
                    times.push(t);
                }
            }
        }
        self.num_static_edges += edges.len();
        self.timestamps.push(label);
        Ok(t)
    }

    /// Out-neighbors of `v` at snapshot `t` as one contiguous slice — the
    /// BFS hot path. Nodes grown after `t` was sealed have no neighbors
    /// there.
    #[inline]
    pub fn out_slice(&self, v: NodeId, t: TimeIndex) -> &[NodeId] {
        let offsets = &self.out_offsets[t.index()];
        match offsets.get(v.index() + 1) {
            Some(&end) => &self.out_pool[offsets[v.index()] as usize..end as usize],
            None => &[],
        }
    }

    /// In-neighbors of `v` at snapshot `t` as one contiguous slice. For
    /// undirected graphs this is the same slice as [`Self::out_slice`].
    #[inline]
    pub fn in_slice(&self, v: NodeId, t: TimeIndex) -> &[NodeId] {
        if !self.directed {
            return self.out_slice(v, t);
        }
        let offsets = &self.in_offsets[t.index()];
        match offsets.get(v.index() + 1) {
            Some(&end) => &self.in_pool[offsets[v.index()] as usize..end as usize],
            None => &[],
        }
    }

    /// The sorted snapshot indices at which `v` is active, as a slice.
    #[inline]
    pub fn active_slice(&self, v: NodeId) -> &[TimeIndex] {
        &self.active[v.index()]
    }

    /// Whether the static edge `(u, v)` exists at snapshot `t`.
    pub fn has_static_edge(&self, u: NodeId, v: NodeId, t: TimeIndex) -> bool {
        if u.index() >= self.num_nodes || t.index() >= self.timestamps.len() {
            return false;
        }
        self.out_slice(u, t).contains(&v)
    }

    /// Whether the temporal node `(v, t)` is active (Definition 3).
    pub fn is_active(&self, v: NodeId, t: TimeIndex) -> bool {
        self.active[v.index()].binary_search(&t).is_ok()
    }

    /// Size of the node universe.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of sealed snapshots.
    pub fn num_timestamps(&self) -> usize {
        self.timestamps.len()
    }

    /// Total number of static edges (each undirected edge counted once).
    pub fn num_static_edges(&self) -> usize {
        self.num_static_edges
    }

    /// Whether edges are directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// All active temporal nodes at snapshot `t`.
    pub fn active_at(&self, t: TimeIndex) -> Vec<TemporalNode> {
        (0..self.num_nodes)
            .map(NodeId::from_index)
            .filter(|&v| self.is_active(v, t))
            .map(|v| TemporalNode::new(v, t))
            .collect()
    }
}

/// The raw columns of a [`CsrAdjacency`], exposed for serialization.
///
/// A checkpointing layer (see `egraph-log`) persists a sealed graph by
/// writing these columns out and rebuilds it with
/// [`CsrAdjacency::from_parts`], which re-validates every structural
/// invariant — offset rows must tile the pools exactly, activeness lists
/// must be sorted, labels must be strictly increasing — so bytes that pass
/// a CRC but describe an impossible graph are rejected instead of becoming
/// out-of-bounds slices at query time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CsrParts {
    /// Snapshot labels, strictly increasing.
    pub timestamps: Vec<Timestamp>,
    /// Size of the node universe.
    pub num_nodes: usize,
    /// Whether edges are directed.
    pub directed: bool,
    /// Per-snapshot absolute offsets into `out_pool`.
    pub out_offsets: Vec<Vec<u32>>,
    /// All out-neighbor lists, snapshot-major then node-major.
    pub out_pool: Vec<NodeId>,
    /// Mirror of `out_offsets` for in-neighbors; empty when undirected.
    pub in_offsets: Vec<Vec<u32>>,
    /// Mirror of `out_pool` for in-neighbors; empty when undirected.
    pub in_pool: Vec<NodeId>,
    /// `active[v]` = sorted snapshot indices at which `v` is active.
    pub active: Vec<Vec<TimeIndex>>,
    /// Total number of static edges (each undirected edge counted once).
    pub num_static_edges: usize,
}

impl CsrAdjacency {
    /// Copies the graph's raw columns out for serialization.
    pub fn to_parts(&self) -> CsrParts {
        CsrParts {
            timestamps: self.timestamps.clone(),
            num_nodes: self.num_nodes,
            directed: self.directed,
            out_offsets: self.out_offsets.clone(),
            out_pool: self.out_pool.clone(),
            in_offsets: self.in_offsets.clone(),
            in_pool: self.in_pool.clone(),
            active: self.active.clone(),
            num_static_edges: self.num_static_edges,
        }
    }

    /// Rebuilds a graph from deserialized columns, validating every
    /// invariant the traversal hot paths rely on.
    ///
    /// # Errors
    /// A human-readable description of the first violated invariant. A graph
    /// accepted here is safe to traverse: no offset, node id or time index
    /// can reach out of bounds.
    pub fn from_parts(parts: CsrParts) -> std::result::Result<Self, String> {
        validate_parts(&parts)?;
        Ok(CsrAdjacency {
            timestamps: parts.timestamps,
            num_nodes: parts.num_nodes,
            directed: parts.directed,
            out_offsets: parts.out_offsets,
            out_pool: parts.out_pool,
            in_offsets: parts.in_offsets,
            in_pool: parts.in_pool,
            active: parts.active,
            num_static_edges: parts.num_static_edges,
        })
    }
}

/// Checks all structural invariants of a deserialized [`CsrParts`].
fn validate_parts(parts: &CsrParts) -> std::result::Result<(), String> {
    let snapshots = parts.timestamps.len();
    if let Some(w) = parts.timestamps.windows(2).position(|w| w[1] <= w[0]) {
        return Err(format!("timestamps not strictly increasing at index {w}"));
    }
    validate_offsets("out", &parts.out_offsets, &parts.out_pool, parts, snapshots)?;
    if parts.directed {
        validate_offsets("in", &parts.in_offsets, &parts.in_pool, parts, snapshots)?;
        if parts.in_pool.len() != parts.out_pool.len() {
            return Err(format!(
                "in pool holds {} entries but out pool holds {}",
                parts.in_pool.len(),
                parts.out_pool.len()
            ));
        }
    } else if !parts.in_offsets.is_empty() || !parts.in_pool.is_empty() {
        return Err("undirected graph carries in-neighbor structures".into());
    }
    let expected_pool = if parts.directed {
        parts.num_static_edges
    } else {
        2 * parts.num_static_edges
    };
    if parts.out_pool.len() != expected_pool {
        return Err(format!(
            "num_static_edges {} disagrees with out pool of {} entries",
            parts.num_static_edges,
            parts.out_pool.len()
        ));
    }
    if parts.active.len() != parts.num_nodes {
        return Err(format!(
            "active table covers {} nodes but the universe holds {}",
            parts.active.len(),
            parts.num_nodes
        ));
    }
    for (v, times) in parts.active.iter().enumerate() {
        if times.windows(2).any(|w| w[1] <= w[0]) {
            return Err(format!("active times of node {v} not strictly increasing"));
        }
        if let Some(&t) = times.last() {
            if t.index() >= snapshots {
                return Err(format!(
                    "active time {t} of node {v} exceeds {snapshots} snapshots"
                ));
            }
        }
    }
    Ok(())
}

/// Checks that one side's offset rows tile its pool exactly: each row starts
/// where the previous ended, rows are monotone, and every pool entry is a
/// valid node id.
fn validate_offsets(
    side: &str,
    offsets: &[Vec<u32>],
    pool: &[NodeId],
    parts: &CsrParts,
    snapshots: usize,
) -> std::result::Result<(), String> {
    if offsets.len() != snapshots {
        return Err(format!(
            "{side} offsets cover {} snapshots but the graph has {snapshots}",
            offsets.len()
        ));
    }
    let mut cursor = 0u32;
    for (t, row) in offsets.iter().enumerate() {
        if row.is_empty() || row.len() > parts.num_nodes + 1 {
            return Err(format!(
                "{side} offset row {t} holds {} entries for a universe of {} nodes",
                row.len(),
                parts.num_nodes
            ));
        }
        if row[0] != cursor {
            return Err(format!(
                "{side} offset row {t} starts at {} but the previous row ended at {cursor}",
                row[0]
            ));
        }
        if row.windows(2).any(|w| w[1] < w[0]) {
            return Err(format!("{side} offset row {t} is not monotone"));
        }
        cursor = row[row.len() - 1];
    }
    if cursor as usize != pool.len() {
        return Err(format!(
            "{side} offsets end at {cursor} but the pool holds {} entries",
            pool.len()
        ));
    }
    if let Some(w) = pool.iter().find(|w| w.index() >= parts.num_nodes) {
        return Err(format!(
            "{side} pool entry {w} exceeds the universe of {} nodes",
            parts.num_nodes
        ));
    }
    Ok(())
}

/// A pool length as a stored `u32` offset — failing loudly instead of
/// wrapping if a graph outgrows the offset space.
fn pool_offset(len: usize) -> u32 {
    u32::try_from(len).expect("CSR neighbor pool exceeds u32::MAX entries")
}

/// Asserts that a pool can absorb `added` more entries without its offsets
/// leaving `u32` range.
fn check_offset_headroom(len: usize, added: usize) {
    pool_offset(
        len.checked_add(added)
            .expect("CSR pool size overflows usize"),
    );
}

impl EvolvingGraph for CsrAdjacency {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_timestamps(&self) -> usize {
        self.timestamps.len()
    }

    fn timestamp(&self, t: TimeIndex) -> Timestamp {
        self.timestamps[t.index()]
    }

    fn is_directed(&self) -> bool {
        self.directed
    }

    fn num_static_edges(&self) -> usize {
        self.num_static_edges
    }

    fn for_each_static_out(&self, v: NodeId, t: TimeIndex, f: &mut dyn FnMut(NodeId)) {
        for &w in self.out_slice(v, t) {
            f(w);
        }
    }

    fn for_each_static_in(&self, v: NodeId, t: TimeIndex, f: &mut dyn FnMut(NodeId)) {
        for &u in self.in_slice(v, t) {
            f(u);
        }
    }

    fn for_each_active_time(&self, v: NodeId, f: &mut dyn FnMut(TimeIndex)) {
        for &t in self.active_slice(v) {
            f(t);
        }
    }

    fn is_active(&self, v: NodeId, t: TimeIndex) -> bool {
        CsrAdjacency::is_active(self, v, t)
    }

    /// Slice-direct override of the provided forward-neighbor visitor: one
    /// binary search replaces the activeness scan, and both edge classes are
    /// enumerated straight off the contiguous pools with a single dyn
    /// callback layer — the hot path of the (parallel) frontier expansion,
    /// which is why the CSR layout exists. Visitation order matches the
    /// provided method exactly: static out-edges at `t`, then causal edges
    /// in increasing snapshot order.
    fn for_each_forward_neighbor(&self, tn: TemporalNode, f: &mut dyn FnMut(TemporalNode)) {
        let times = self.active_slice(tn.node);
        let Ok(pos) = times.binary_search(&tn.time) else {
            return; // inactive temporal nodes have no forward neighbors
        };
        for &w in self.out_slice(tn.node, tn.time) {
            f(TemporalNode::new(w, tn.time));
        }
        for &t in &times[pos + 1..] {
            f(TemporalNode::new(tn.node, t));
        }
    }

    /// Backward twin of the forward override (reversed static edges at `t`,
    /// then causal edges to earlier snapshots in increasing order).
    fn for_each_backward_neighbor(&self, tn: TemporalNode, f: &mut dyn FnMut(TemporalNode)) {
        let times = self.active_slice(tn.node);
        let Ok(pos) = times.binary_search(&tn.time) else {
            return;
        };
        for &u in self.in_slice(tn.node, tn.time) {
            f(TemporalNode::new(u, tn.time));
        }
        for &t in &times[..pos] {
            f(TemporalNode::new(tn.node, t));
        }
    }

    fn time_index_of(&self, timestamp: Timestamp) -> Option<TimeIndex> {
        self.timestamps
            .binary_search(&timestamp)
            .ok()
            .map(TimeIndex::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyListGraph;
    use crate::bfs::{backward_bfs, bfs};
    use crate::examples::paper_figure1;
    use crate::foremost::earliest_arrival;

    /// Structural equality with a reference graph: every primitive the
    /// traversals use must agree.
    fn assert_same_graph<G: EvolvingGraph>(csr: &CsrAdjacency, reference: &G) {
        assert_eq!(csr.num_nodes, reference.num_nodes());
        assert_eq!(csr.num_timestamps(), reference.num_timestamps());
        assert_eq!(csr.num_static_edges(), reference.num_static_edges());
        assert_eq!(EvolvingGraph::timestamps(csr), reference.timestamps());
        for v in 0..reference.num_nodes() {
            let v = NodeId::from_index(v);
            assert_eq!(
                csr.active_slice(v),
                reference.active_times(v),
                "active times of {v:?}"
            );
            for t in 0..reference.num_timestamps() {
                let t = TimeIndex::from_index(t);
                assert_eq!(
                    csr.out_slice(v, t),
                    reference.static_out_neighbors(v, t),
                    "out of ({v:?}, {t:?})"
                );
                assert_eq!(
                    csr.in_slice(v, t),
                    reference.static_in_neighbors(v, t),
                    "in of ({v:?}, {t:?})"
                );
            }
        }
    }

    #[test]
    fn from_graph_preserves_the_paper_example_exactly() {
        let g = paper_figure1();
        let csr = CsrAdjacency::from_graph(&g);
        assert_same_graph(&csr, &g);
        for &root in &g.active_nodes() {
            assert_eq!(
                bfs(&csr, root).unwrap().as_flat_slice(),
                bfs(&g, root).unwrap().as_flat_slice(),
                "root {root:?}"
            );
            assert_eq!(
                backward_bfs(&csr, root).unwrap().as_flat_slice(),
                backward_bfs(&g, root).unwrap().as_flat_slice(),
            );
            assert_eq!(
                earliest_arrival(&csr, root).arrivals(),
                earliest_arrival(&g, root).arrivals(),
            );
        }
    }

    #[test]
    fn incremental_append_equals_bulk_conversion() {
        // The sealed-append path must produce byte-identical layout inputs
        // to flattening the finished graph.
        let mut nested = AdjacencyListGraph::directed_with_unit_times(6, 0);
        let mut csr = CsrAdjacency::new(6, true);
        let batches: [&[(u32, u32)]; 3] = [
            &[(0, 1), (1, 2), (0, 2)],
            &[(2, 3), (3, 4), (0, 1)], // parallel edge on purpose
            &[(4, 5), (5, 0)],
        ];
        for (label, batch) in batches.iter().enumerate() {
            let t = nested.push_timestamp(label as i64).unwrap();
            let edges: Vec<(NodeId, NodeId)> =
                batch.iter().map(|&(u, v)| (NodeId(u), NodeId(v))).collect();
            for &(u, v) in &edges {
                nested.add_edge(u, v, t).unwrap();
            }
            csr.append_snapshot(label as i64, &edges).unwrap();
        }
        assert_same_graph(&csr, &nested);
        assert_same_graph(&CsrAdjacency::from_graph(&nested), &nested);
    }

    #[test]
    fn undirected_appends_store_both_end_points() {
        let mut csr = CsrAdjacency::new(3, false);
        csr.append_snapshot(0, &[(NodeId(0), NodeId(2))]).unwrap();
        assert_eq!(csr.out_slice(NodeId(0), TimeIndex(0)), &[NodeId(2)]);
        assert_eq!(csr.out_slice(NodeId(2), TimeIndex(0)), &[NodeId(0)]);
        assert_eq!(csr.in_slice(NodeId(0), TimeIndex(0)), &[NodeId(2)]);
        assert_eq!(csr.num_static_edges(), 1);
        assert!(csr.has_static_edge(NodeId(2), NodeId(0), TimeIndex(0)));
    }

    #[test]
    fn append_rejects_bad_labels_and_edges_atomically() {
        let mut csr = CsrAdjacency::new(3, true);
        csr.append_snapshot(5, &[(NodeId(0), NodeId(1))]).unwrap();
        assert_eq!(
            csr.append_snapshot(5, &[]).unwrap_err(),
            GraphError::UnsortedTimestamps { position: 1 }
        );
        assert!(matches!(
            csr.append_snapshot(6, &[(NodeId(1), NodeId(1))]),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            csr.append_snapshot(6, &[(NodeId(0), NodeId(7))]),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        // Failed appends leave the graph unchanged.
        assert_eq!(csr.num_timestamps(), 1);
        assert_eq!(csr.num_static_edges(), 1);
        assert_eq!(csr.append_snapshot(6, &[]).unwrap(), TimeIndex(1));
    }

    #[test]
    fn grown_nodes_have_no_neighbors_at_sealed_snapshots() {
        let mut csr = CsrAdjacency::new(2, true);
        csr.append_snapshot(0, &[(NodeId(0), NodeId(1))]).unwrap();
        csr.grow_nodes(5);
        assert_eq!(csr.num_nodes(), 5);
        // Sealed offset rows are shorter than the universe: empty slices.
        assert!(csr.out_slice(NodeId(4), TimeIndex(0)).is_empty());
        assert!(csr.in_slice(NodeId(4), TimeIndex(0)).is_empty());
        assert!(!csr.is_active(NodeId(4), TimeIndex(0)));
        csr.append_snapshot(1, &[(NodeId(4), NodeId(0))]).unwrap();
        assert_eq!(csr.out_slice(NodeId(4), TimeIndex(1)), &[NodeId(0)]);
        assert!(csr.is_active(NodeId(4), TimeIndex(1)));
    }

    #[test]
    fn empty_snapshots_are_legal_and_inactive() {
        let mut csr = CsrAdjacency::new(2, true);
        csr.append_snapshot(3, &[]).unwrap();
        assert_eq!(csr.num_timestamps(), 1);
        assert!(csr.active_at(TimeIndex(0)).is_empty());
        assert!(csr.out_slice(NodeId(1), TimeIndex(0)).is_empty());
    }

    #[test]
    fn parts_round_trip_preserves_the_graph_exactly() {
        let g = paper_figure1();
        let csr = CsrAdjacency::from_graph(&g);
        let rebuilt = CsrAdjacency::from_parts(csr.to_parts()).unwrap();
        assert_same_graph(&rebuilt, &g);
        for &root in &g.active_nodes() {
            assert_eq!(
                bfs(&rebuilt, root).unwrap().as_flat_slice(),
                bfs(&csr, root).unwrap().as_flat_slice(),
            );
        }

        // Grown nodes and undirected storage survive the round trip too.
        let mut csr = CsrAdjacency::new(2, false);
        csr.append_snapshot(0, &[(NodeId(0), NodeId(1))]).unwrap();
        csr.grow_nodes(5);
        csr.append_snapshot(4, &[(NodeId(3), NodeId(4))]).unwrap();
        let rebuilt = CsrAdjacency::from_parts(csr.to_parts()).unwrap();
        assert_same_graph(&rebuilt, &csr);
    }

    #[test]
    fn from_parts_rejects_every_broken_invariant() {
        let good = {
            let mut csr = CsrAdjacency::new(3, true);
            csr.append_snapshot(0, &[(NodeId(0), NodeId(1))]).unwrap();
            csr.append_snapshot(7, &[(NodeId(1), NodeId(2))]).unwrap();
            csr.to_parts()
        };
        assert!(CsrAdjacency::from_parts(good.clone()).is_ok());

        type Breakage = (&'static str, Box<dyn Fn(&mut CsrParts)>);
        let mut breakages: Vec<Breakage> = Vec::new();
        breakages.push(("timestamps", Box::new(|p| p.timestamps[1] = 0)));
        breakages.push(("row count", Box::new(|p| p.out_offsets.truncate(1))));
        breakages.push(("row start", Box::new(|p| p.out_offsets[1][0] = 0)));
        breakages.push(("monotone", Box::new(|p| p.out_offsets[0][1] = 9)));
        breakages.push(("pool tile", Box::new(|p| p.out_pool.push(NodeId(0)))));
        breakages.push(("node range", Box::new(|p| p.out_pool[0] = NodeId(9))));
        breakages.push(("in pool", Box::new(|p| p.in_pool.clear())));
        breakages.push(("edge count", Box::new(|p| p.num_static_edges = 5)));
        breakages.push((
            "active len",
            Box::new(|p| p.active.pop().map(|_| ()).unwrap()),
        ));
        breakages.push((
            "active sorted",
            Box::new(|p| p.active[0] = vec![TimeIndex(1), TimeIndex(0)]),
        ));
        breakages.push((
            "active range",
            Box::new(|p| p.active[2] = vec![TimeIndex(7)]),
        ));
        breakages.push((
            "undirected extras",
            Box::new(|p| {
                p.directed = false;
                p.num_static_edges = 1;
            }),
        ));
        for (what, breakage) in breakages {
            let mut bad = good.clone();
            breakage(&mut bad);
            assert!(
                CsrAdjacency::from_parts(bad).is_err(),
                "{what} breakage must be rejected"
            );
        }
    }

    #[test]
    fn pool_stays_contiguous_across_appends() {
        // The zero-copy claim: every slice is a window into one Vec.
        let mut csr = CsrAdjacency::new(4, true);
        csr.append_snapshot(0, &[(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2))])
            .unwrap();
        csr.append_snapshot(1, &[(NodeId(1), NodeId(3))]).unwrap();
        let pool_range = csr.out_pool.as_ptr_range();
        for t in 0..2 {
            for v in 0..4 {
                let s = csr.out_slice(NodeId(v), TimeIndex(t));
                if !s.is_empty() {
                    assert!(pool_range.contains(&s.as_ptr()));
                }
            }
        }
        assert_eq!(csr.out_pool.len(), 3);
    }
}
