//! The equivalent static graph `G = (V, E)` of Theorem 1.
//!
//! The proof of Theorem 1 maps an evolving graph `G_n` to an ordinary static
//! graph whose nodes are the *active* temporal nodes of `G_n` and whose edges
//! are the time-labelled static edges `Ẽ` plus the causal edges `E′`. BFS on
//! `G_n` (Algorithm 1) is then literally BFS on `G`, which is how correctness
//! and the `O(|E| + |V|)` bound are obtained.
//!
//! [`EquivalentStaticGraph`] materialises this construction. It is *not* used
//! by the traversal algorithms (which work on the evolving representation
//! directly and never pay for the quadratic causal edge set) — it exists as
//! an executable statement of the theorem, used by tests, the linear-algebra
//! crate, and anyone who wants to hand the flattened graph to conventional
//! static-graph tooling.

use crate::graph::EvolvingGraph;
use crate::ids::{TemporalNode, TimeIndex};
use crate::static_graph::StaticGraph;

/// The static graph `G = (V, Ẽ ∪ E′)` with `V` = active temporal nodes.
#[derive(Clone, Debug)]
pub struct EquivalentStaticGraph {
    graph: StaticGraph,
    /// `nodes[i]` = the temporal node represented by static node `i`.
    nodes: Vec<TemporalNode>,
    /// Flat lookup (time-major) from temporal node to static node index;
    /// `u32::MAX` marks inactive temporal nodes that have no counterpart.
    index: Vec<u32>,
    num_nodes: usize,
    num_static_edges: usize,
    num_causal_edges: usize,
}

/// Sentinel for "this temporal node is inactive and absent from V".
const ABSENT: u32 = u32::MAX;

impl EquivalentStaticGraph {
    /// Builds the equivalent static graph of `graph` following the proof of
    /// Theorem 1: one node per active temporal node, one directed edge per
    /// static edge (two per undirected static edge) and one directed edge per
    /// causal pair `((v, s), (v, t))`, `s < t`.
    pub fn build<G: EvolvingGraph>(graph: &G) -> Self {
        let n = graph.num_nodes();
        let n_t = graph.num_timestamps();

        // Assign indices to active temporal nodes in time-major order so the
        // ordering matches the block adjacency matrix of Section III-C.
        let mut nodes = Vec::new();
        let mut index = vec![ABSENT; n * n_t];
        for t in 0..n_t {
            let t = TimeIndex::from_index(t);
            for v in 0..n {
                let v = crate::ids::NodeId::from_index(v);
                if graph.is_active(v, t) {
                    let tn = TemporalNode::new(v, t);
                    index[tn.flat_index(n)] = nodes.len() as u32;
                    nodes.push(tn);
                }
            }
        }

        let mut g = StaticGraph::new(nodes.len());
        let mut num_static_edges = 0usize;
        let mut num_causal_edges = 0usize;

        // Static edges Ẽ: (u, t) → (w, t) for every static edge at t.
        for t in 0..n_t {
            let t = TimeIndex::from_index(t);
            for v in 0..n {
                let v = crate::ids::NodeId::from_index(v);
                graph.for_each_static_out(v, t, &mut |w| {
                    let src = index[TemporalNode::new(v, t).flat_index(n)];
                    let dst = index[TemporalNode::new(w, t).flat_index(n)];
                    debug_assert!(src != ABSENT && dst != ABSENT);
                    g.add_edge(src as usize, dst as usize);
                    num_static_edges += 1;
                });
            }
        }

        // Causal edges E′: (v, s) → (v, t) for all active s < t.
        for v in 0..n {
            let v = crate::ids::NodeId::from_index(v);
            let times = graph.active_times(v);
            for (i, &s) in times.iter().enumerate() {
                for &t in &times[i + 1..] {
                    let src = index[TemporalNode::new(v, s).flat_index(n)];
                    let dst = index[TemporalNode::new(v, t).flat_index(n)];
                    g.add_edge(src as usize, dst as usize);
                    num_causal_edges += 1;
                }
            }
        }

        EquivalentStaticGraph {
            graph: g,
            nodes,
            index,
            num_nodes: n,
            num_static_edges,
            num_causal_edges,
        }
    }

    /// The underlying static graph.
    pub fn static_graph(&self) -> &StaticGraph {
        &self.graph
    }

    /// Number of nodes `|V|` (active temporal nodes).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges `|E| = |Ẽ| + |E′|` (with undirected static edges
    /// already expanded to two directed edges).
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Number of (directed) edges contributed by the static edge set `Ẽ`.
    pub fn num_static_edges(&self) -> usize {
        self.num_static_edges
    }

    /// Number of causal edges `|E′|`.
    pub fn num_causal_edges(&self) -> usize {
        self.num_causal_edges
    }

    /// The temporal node represented by static node `i`.
    pub fn temporal_node(&self, i: usize) -> TemporalNode {
        self.nodes[i]
    }

    /// All temporal nodes in index order (time-major).
    pub fn temporal_nodes(&self) -> &[TemporalNode] {
        &self.nodes
    }

    /// The static node index of an active temporal node, or `None` if the
    /// temporal node is inactive.
    pub fn node_index(&self, tn: TemporalNode) -> Option<usize> {
        let idx = *self.index.get(tn.flat_index(self.num_nodes))?;
        if idx == ABSENT {
            None
        } else {
            Some(idx as usize)
        }
    }

    /// Classical BFS distances from an active temporal node, keyed by
    /// temporal node. This is the right-hand side of Theorem 1's equivalence.
    pub fn bfs_distances_from(&self, root: TemporalNode) -> Option<Vec<(TemporalNode, u32)>> {
        let root_idx = self.node_index(root)?;
        let dist = self.graph.bfs_distances(root_idx);
        Some(
            dist.iter()
                .enumerate()
                .filter(|(_, &d)| d != u32::MAX)
                .map(|(i, &d)| (self.nodes[i], d))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use crate::examples::paper_figure1;
    use crate::graph::EvolvingGraph;

    #[test]
    fn figure4_construction_sizes() {
        let g = paper_figure1();
        let eq = EquivalentStaticGraph::build(&g);
        // V has 6 active nodes; E has 3 static + 3 causal edges.
        assert_eq!(eq.num_nodes(), 6);
        assert_eq!(eq.num_static_edges(), 3);
        assert_eq!(eq.num_causal_edges(), 3);
        assert_eq!(eq.num_edges(), 6);
    }

    #[test]
    fn node_ordering_is_time_major_as_in_paper() {
        // The paper orders V as (1,t1), (2,t1), (1,t2), (3,t2), (2,t3), (3,t3).
        let g = paper_figure1();
        let eq = EquivalentStaticGraph::build(&g);
        let order: Vec<TemporalNode> = eq.temporal_nodes().to_vec();
        assert_eq!(
            order,
            vec![
                TemporalNode::from_raw(0, 0),
                TemporalNode::from_raw(1, 0),
                TemporalNode::from_raw(0, 1),
                TemporalNode::from_raw(2, 1),
                TemporalNode::from_raw(1, 2),
                TemporalNode::from_raw(2, 2),
            ]
        );
    }

    #[test]
    fn adjacency_matches_a3_matrix_from_section_iiic() {
        // A3 (paper, Section III-C) in the ordering above:
        // edges: 0->1, 0->2, 2->3, 1->4, 3->5, 4->5.
        let g = paper_figure1();
        let eq = EquivalentStaticGraph::build(&g);
        let expected = [(0, 1), (0, 2), (2, 3), (1, 4), (3, 5), (4, 5)];
        for &(u, v) in &expected {
            assert!(eq.static_graph().has_edge(u, v), "missing edge {u}->{v}");
        }
        assert_eq!(eq.num_edges(), expected.len());
    }

    #[test]
    fn inactive_nodes_are_absent() {
        let g = paper_figure1();
        let eq = EquivalentStaticGraph::build(&g);
        assert_eq!(eq.node_index(TemporalNode::from_raw(2, 0)), None);
        assert_eq!(eq.node_index(TemporalNode::from_raw(1, 1)), None);
        assert_eq!(eq.node_index(TemporalNode::from_raw(0, 2)), None);
    }

    #[test]
    fn theorem1_bfs_equivalence_on_paper_example() {
        let g = paper_figure1();
        let eq = EquivalentStaticGraph::build(&g);
        for &root in &g.active_nodes() {
            let evolving = bfs(&g, root).unwrap();
            let static_dists = eq.bfs_distances_from(root).unwrap();
            assert_eq!(static_dists.len(), evolving.num_reached());
            for (tn, d) in static_dists {
                assert_eq!(evolving.distance(tn), Some(d), "root {root:?}, node {tn:?}");
            }
        }
    }

    #[test]
    fn undirected_static_edges_become_two_directed_edges() {
        let mut g = crate::adjacency::AdjacencyListGraph::undirected_with_unit_times(2, 1);
        g.add_edge(crate::ids::NodeId(0), crate::ids::NodeId(1), TimeIndex(0))
            .unwrap();
        let eq = EquivalentStaticGraph::build(&g);
        assert_eq!(eq.num_nodes(), 2);
        assert_eq!(eq.num_static_edges(), 2);
        assert_eq!(eq.num_causal_edges(), 0);
    }
}
