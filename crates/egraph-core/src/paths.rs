//! Temporal paths: validation, enumeration and walk counting.
//!
//! Definition 4 defines a *temporal path* as a time-ordered sequence of
//! active temporal nodes in which consecutive elements are joined either by a
//! static edge (same snapshot) or by a causal edge (same node, strictly later
//! snapshot). The paper's central counter-example (Section III-A) is about
//! *counting* such paths: the naïve adjacency-product sum `S[t]` finds one
//! path of length 4 from `(1, t1)` to `(3, t3)` in the Figure 1 graph when
//! there are really two.
//!
//! This module provides
//!
//! * [`is_temporal_path`] — an executable version of Definition 4;
//! * [`enumerate_paths`] — exhaustive enumeration of simple temporal paths
//!   (used by tests on small graphs);
//! * [`count_walks_of_length`] / [`walk_count_vector`] — dynamic-programming
//!   walk counts that match the powers of the block adjacency matrix
//!   `(A_nᵀ)^k` of Section III-C exactly.

use crate::graph::EvolvingGraph;
use crate::ids::TemporalNode;

/// Why a sequence of temporal nodes fails to be a temporal path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathViolation {
    /// The sequence is empty.
    Empty,
    /// Some element is not an active temporal node (Definition 4 requires a
    /// sequence of active nodes).
    InactiveNode(usize),
    /// Time decreased between consecutive elements.
    TimeDecreased(usize),
    /// Consecutive elements are joined by neither a static edge nor a causal
    /// edge.
    NotAdjacent(usize),
    /// The same temporal node appears twice (the path is not simple).
    RepeatedTemporalNode(usize),
}

/// Checks whether `seq` is a (simple) temporal path of the graph, returning
/// the first violation if it is not.
pub fn check_temporal_path<G: EvolvingGraph>(
    graph: &G,
    seq: &[TemporalNode],
) -> Result<(), PathViolation> {
    if seq.is_empty() {
        return Err(PathViolation::Empty);
    }
    for (i, &tn) in seq.iter().enumerate() {
        if !graph.is_active(tn.node, tn.time) {
            return Err(PathViolation::InactiveNode(i));
        }
        if seq[..i].contains(&tn) {
            return Err(PathViolation::RepeatedTemporalNode(i));
        }
    }
    for i in 1..seq.len() {
        let prev = seq[i - 1];
        let cur = seq[i];
        if cur.time < prev.time {
            return Err(PathViolation::TimeDecreased(i));
        }
        let static_hop = cur.time == prev.time
            && graph
                .static_out_neighbors(prev.node, prev.time)
                .contains(&cur.node);
        let causal_hop = cur.node == prev.node && cur.time > prev.time;
        if !(static_hop || causal_hop) {
            return Err(PathViolation::NotAdjacent(i));
        }
    }
    Ok(())
}

/// Whether `seq` is a valid (simple) temporal path.
pub fn is_temporal_path<G: EvolvingGraph>(graph: &G, seq: &[TemporalNode]) -> bool {
    check_temporal_path(graph, seq).is_ok()
}

/// Enumerates every *simple* temporal path from `from` to `to` with at most
/// `max_nodes` temporal nodes (the paper measures length in nodes, so the
/// Figure 2 paths have length 4).
///
/// Exhaustive enumeration is exponential in the worst case; it is meant for
/// small graphs, tests and teaching, not for production traversals.
pub fn enumerate_paths<G: EvolvingGraph>(
    graph: &G,
    from: TemporalNode,
    to: TemporalNode,
    max_nodes: usize,
) -> Vec<Vec<TemporalNode>> {
    let mut results = Vec::new();
    if max_nodes == 0
        || !graph.is_active(from.node, from.time)
        || !graph.is_active(to.node, to.time)
    {
        return results;
    }
    let mut stack = vec![from];
    dfs(graph, to, max_nodes, &mut stack, &mut results);
    results
}

fn dfs<G: EvolvingGraph>(
    graph: &G,
    to: TemporalNode,
    max_nodes: usize,
    stack: &mut Vec<TemporalNode>,
    results: &mut Vec<Vec<TemporalNode>>,
) {
    let cur = *stack.last().expect("stack never empty");
    if cur == to {
        results.push(stack.clone());
        // A path may in principle continue through `to` and come back only if
        // it revisits a temporal node, which simple paths forbid — so we can
        // stop this branch.
        return;
    }
    if stack.len() == max_nodes {
        return;
    }
    let neighbors = graph.forward_neighbors(cur);
    for nbr in neighbors {
        if stack.contains(&nbr) {
            continue;
        }
        stack.push(nbr);
        dfs(graph, to, max_nodes, stack, results);
        stack.pop();
    }
}

/// Number of temporal *walks* (paths that may revisit temporal nodes) with
/// exactly `num_edges` hops from `from` to `to`. This is the quantity counted
/// by the `(i, j)` entry of `(A_nᵀ)^k` in Section III-C; for acyclic evolving
/// graphs walks and paths coincide.
pub fn count_walks_of_length<G: EvolvingGraph>(
    graph: &G,
    from: TemporalNode,
    to: TemporalNode,
    num_edges: usize,
) -> u64 {
    walk_count_vector(graph, from, num_edges)
        .get(to.flat_index(graph.num_nodes()))
        .copied()
        .unwrap_or(0)
}

/// The full vector of walk counts after `num_edges` hops from `from`,
/// flat-indexed time-major (`time * num_nodes + node`). Entry `j` equals
/// `((A_nᵀ)^k b)_j` with `b` the indicator of `from`, computed without ever
/// forming the matrix.
pub fn walk_count_vector<G: EvolvingGraph>(
    graph: &G,
    from: TemporalNode,
    num_edges: usize,
) -> Vec<u64> {
    let size = graph.num_nodes() * graph.num_timestamps();
    let mut counts = vec![0u64; size];
    if !graph.is_active(from.node, from.time) {
        return counts;
    }
    counts[from.flat_index(graph.num_nodes())] = 1;
    let mut next = vec![0u64; size];
    for _ in 0..num_edges {
        next.iter_mut().for_each(|c| *c = 0);
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let tn = TemporalNode::from_flat_index(i, graph.num_nodes());
            graph.for_each_forward_neighbor(tn, &mut |nbr| {
                next[nbr.flat_index(graph.num_nodes())] += c;
            });
        }
        std::mem::swap(&mut counts, &mut next);
    }
    counts
}

/// Total number of simple temporal paths between two temporal nodes with at
/// most `max_nodes` nodes. Convenience wrapper over [`enumerate_paths`].
pub fn count_paths<G: EvolvingGraph>(
    graph: &G,
    from: TemporalNode,
    to: TemporalNode,
    max_nodes: usize,
) -> usize {
    enumerate_paths(graph, from, to, max_nodes).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{paper_figure1, staircase};

    fn tn(v: u32, t: u32) -> TemporalNode {
        TemporalNode::from_raw(v, t)
    }

    #[test]
    fn figure2_paths_are_valid() {
        let g = paper_figure1();
        // ⟨(1,t1),(1,t2),(3,t2),(3,t3)⟩
        assert!(is_temporal_path(
            &g,
            &[tn(0, 0), tn(0, 1), tn(2, 1), tn(2, 2)]
        ));
        // ⟨(1,t1),(2,t1),(2,t3),(3,t3)⟩
        assert!(is_temporal_path(
            &g,
            &[tn(0, 0), tn(1, 0), tn(1, 2), tn(2, 2)]
        ));
    }

    #[test]
    fn inactive_node_invalidates_path_as_in_section_iia() {
        let g = paper_figure1();
        // ⟨(1,t1),(1,t2),(2,t2),(3,t2),(3,t3)⟩ is NOT a temporal path because
        // node 2 is inactive at t2.
        let seq = [tn(0, 0), tn(0, 1), tn(1, 1), tn(2, 1), tn(2, 2)];
        assert_eq!(
            check_temporal_path(&g, &seq),
            Err(PathViolation::InactiveNode(2))
        );
    }

    #[test]
    fn non_adjacent_and_backward_sequences_are_rejected() {
        let g = paper_figure1();
        assert_eq!(
            check_temporal_path(&g, &[tn(0, 0), tn(2, 1)]),
            Err(PathViolation::NotAdjacent(1))
        );
        assert_eq!(
            check_temporal_path(&g, &[tn(0, 1), tn(0, 0)]),
            Err(PathViolation::TimeDecreased(1))
        );
        assert_eq!(check_temporal_path(&g, &[]), Err(PathViolation::Empty));
        assert_eq!(
            check_temporal_path(&g, &[tn(0, 0), tn(1, 0), tn(1, 0)]),
            Err(PathViolation::RepeatedTemporalNode(2))
        );
    }

    #[test]
    fn figure2_enumeration_finds_exactly_two_paths_of_length_four() {
        let g = paper_figure1();
        let paths = enumerate_paths(&g, tn(0, 0), tn(2, 2), 4);
        assert_eq!(paths.len(), 2, "paper counts exactly two temporal paths");
        for p in &paths {
            assert_eq!(p.len(), 4);
            assert!(is_temporal_path(&g, p));
        }
    }

    #[test]
    fn walk_counts_match_the_block_matrix_example() {
        // Section III-C: (A_3ᵀ)³ applied to e_(1,t1) has a 2 in the (3,t3)
        // entry — two walks of 3 hops.
        let g = paper_figure1();
        assert_eq!(count_walks_of_length(&g, tn(0, 0), tn(2, 2), 3), 2);
        // And one hop fewer reaches (3,t2) and (2,t3) once each.
        assert_eq!(count_walks_of_length(&g, tn(0, 0), tn(2, 1), 2), 1);
        assert_eq!(count_walks_of_length(&g, tn(0, 0), tn(1, 2), 2), 1);
        // Four hops: nothing is left (the matrix is nilpotent).
        let total: u64 = walk_count_vector(&g, tn(0, 0), 4).iter().sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn walk_counts_from_inactive_node_are_zero() {
        let g = paper_figure1();
        assert_eq!(walk_count_vector(&g, tn(2, 0), 1).iter().sum::<u64>(), 0);
    }

    #[test]
    fn staircase_has_a_unique_maximal_path() {
        let g = staircase(4);
        let paths = enumerate_paths(&g, tn(0, 0), tn(3, 2), 8);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 6); // 3 static hops + 2 causal hops + root
        assert_eq!(count_paths(&g, tn(0, 0), tn(3, 2), 8), 1);
    }

    #[test]
    fn enumeration_respects_the_node_budget() {
        let g = paper_figure1();
        assert!(enumerate_paths(&g, tn(0, 0), tn(2, 2), 3).is_empty());
        assert_eq!(enumerate_paths(&g, tn(0, 0), tn(2, 2), 4).len(), 2);
    }
}
