//! [`DistanceMap`]: the result of a breadth-first traversal.
//!
//! Algorithm 1 returns `reached`, a dictionary from temporal nodes to their
//! distances from the root. Because this crate uses dense node and snapshot
//! indices, the dictionary is stored as a flat array indexed by
//! `time * num_nodes + node`, with `u32::MAX` marking unreached temporal
//! nodes. An optional parallel array of parent pointers lets callers recover
//! an explicit shortest temporal path (the BFS tree of Section II-C).

use crate::ids::{NodeId, TemporalNode, TimeIndex};

/// Sentinel distance for unreached temporal nodes.
pub const UNREACHED: u32 = u32::MAX;

/// Sentinel parent for the root / unreached nodes.
const NO_PARENT: u64 = u64::MAX;

/// Distances (and optionally BFS-tree parents) from a single root temporal
/// node, as produced by [`crate::bfs::bfs`] and friends.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DistanceMap {
    num_nodes: usize,
    num_timestamps: usize,
    root: TemporalNode,
    dist: Vec<u32>,
    parent: Option<Vec<u64>>,
    reached_count: usize,
    max_distance: u32,
}

impl DistanceMap {
    /// Creates a map with every temporal node unreached except the root
    /// (distance 0).
    pub(crate) fn new(
        num_nodes: usize,
        num_timestamps: usize,
        root: TemporalNode,
        with_parents: bool,
    ) -> Self {
        let size = num_nodes * num_timestamps;
        let mut dist = vec![UNREACHED; size];
        let mut parent = if with_parents {
            Some(vec![NO_PARENT; size])
        } else {
            None
        };
        let root_idx = root.flat_index(num_nodes);
        dist[root_idx] = 0;
        if let Some(p) = parent.as_mut() {
            p[root_idx] = NO_PARENT;
        }
        DistanceMap {
            num_nodes,
            num_timestamps,
            root,
            dist,
            parent,
            reached_count: 1,
            max_distance: 0,
        }
    }

    #[inline]
    fn flat(&self, tn: TemporalNode) -> usize {
        tn.flat_index(self.num_nodes)
    }

    /// Marks `tn` reached at distance `d` with BFS-tree parent `from`.
    /// Returns `false` if it was already reached.
    #[inline]
    pub(crate) fn try_reach(&mut self, tn: TemporalNode, d: u32, from: TemporalNode) -> bool {
        let idx = self.flat(tn);
        if self.dist[idx] != UNREACHED {
            return false;
        }
        self.dist[idx] = d;
        if let Some(p) = self.parent.as_mut() {
            p[idx] = from.flat_index(self.num_nodes) as u64;
        }
        self.reached_count += 1;
        self.max_distance = self.max_distance.max(d);
        true
    }

    /// Direct access used by the parallel BFS, which computes visited flags
    /// with atomics and writes the distances afterwards.
    #[inline]
    pub(crate) fn set_distance_unchecked(&mut self, tn: TemporalNode, d: u32) {
        let idx = self.flat(tn);
        if self.dist[idx] == UNREACHED {
            self.reached_count += 1;
        }
        self.dist[idx] = d;
        self.max_distance = self.max_distance.max(d);
    }

    /// Builds a distance map from an explicit list of `(temporal node,
    /// distance)` pairs. The root must be included with distance 0 (it is
    /// added if missing). Intended for alternative BFS engines — notably the
    /// algebraic formulation of Algorithm 2 in `egraph-matrix` — so their
    /// results can be compared against Algorithm 1 with ordinary equality.
    pub fn from_reached(
        num_nodes: usize,
        num_timestamps: usize,
        root: TemporalNode,
        reached: &[(TemporalNode, u32)],
    ) -> Self {
        let mut map = DistanceMap::new(num_nodes, num_timestamps, root, false);
        for &(tn, d) in reached {
            if tn == root {
                continue;
            }
            map.set_distance_unchecked(tn, d);
        }
        map
    }

    /// Builds a distance map *with parent pointers* from explicit
    /// `(temporal node, distance, parent)` entries. The root is implied at
    /// distance 0; entries equal to the root are skipped. Used by query
    /// layers that run a traversal on a view (time window, reversed time)
    /// and must express the result — including the BFS tree — in the
    /// coordinates of the underlying graph.
    pub fn from_reached_with_parents(
        num_nodes: usize,
        num_timestamps: usize,
        root: TemporalNode,
        reached: &[(TemporalNode, u32, Option<TemporalNode>)],
    ) -> Self {
        let mut map = DistanceMap::new(num_nodes, num_timestamps, root, true);
        for &(tn, d, parent) in reached {
            if tn == root {
                continue;
            }
            map.set_distance_unchecked(tn, d);
            if let (Some(p), Some(parents)) = (parent, map.parent.as_mut()) {
                parents[tn.flat_index(num_nodes)] = p.flat_index(num_nodes) as u64;
            }
        }
        map
    }

    /// The root temporal node from which the traversal started.
    pub fn root(&self) -> TemporalNode {
        self.root
    }

    /// Size of the node universe of the traversed graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of snapshots of the traversed graph.
    pub fn num_timestamps(&self) -> usize {
        self.num_timestamps
    }

    /// Distance from the root to `tn`, or `None` if `tn` was not reached.
    #[inline]
    pub fn distance(&self, tn: TemporalNode) -> Option<u32> {
        let d = self.dist[self.flat(tn)];
        if d == UNREACHED {
            None
        } else {
            Some(d)
        }
    }

    /// Whether `tn` is reachable from the root (Definition 7).
    #[inline]
    pub fn is_reached(&self, tn: TemporalNode) -> bool {
        self.dist[self.flat(tn)] != UNREACHED
    }

    /// Number of reached temporal nodes, including the root.
    pub fn num_reached(&self) -> usize {
        self.reached_count
    }

    /// The largest finite distance in the map (the BFS depth).
    pub fn max_distance(&self) -> u32 {
        self.max_distance
    }

    /// All reached temporal nodes with their distances, in flat-index order.
    pub fn reached(&self) -> Vec<(TemporalNode, u32)> {
        self.dist
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != UNREACHED)
            .map(|(i, &d)| (TemporalNode::from_flat_index(i, self.num_nodes), d))
            .collect()
    }

    /// The reached temporal nodes at exactly distance `k` (one BFS layer).
    pub fn layer(&self, k: u32) -> Vec<TemporalNode> {
        self.dist
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == k)
            .map(|(i, _)| TemporalNode::from_flat_index(i, self.num_nodes))
            .collect()
    }

    /// The distinct *node* identifiers reached at any time — the influence
    /// set `T(a, t)` of Section V is exactly this set for a citation graph.
    pub fn reached_node_ids(&self) -> Vec<NodeId> {
        let mut seen = vec![false; self.num_nodes];
        for (i, &d) in self.dist.iter().enumerate() {
            if d != UNREACHED {
                seen[i % self.num_nodes] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(v, _)| NodeId::from_index(v))
            .collect()
    }

    /// The earliest snapshot at which each reached node is reached, keyed by
    /// node. Unreached nodes are absent.
    pub fn earliest_reach_times(&self) -> Vec<(NodeId, TimeIndex)> {
        let mut earliest: Vec<Option<TimeIndex>> = vec![None; self.num_nodes];
        for (i, &d) in self.dist.iter().enumerate() {
            if d == UNREACHED {
                continue;
            }
            let tn = TemporalNode::from_flat_index(i, self.num_nodes);
            let slot = &mut earliest[tn.node.index()];
            if slot.map(|t| tn.time < t).unwrap_or(true) {
                *slot = Some(tn.time);
            }
        }
        earliest
            .iter()
            .enumerate()
            .filter_map(|(v, t)| t.map(|t| (NodeId::from_index(v), t)))
            .collect()
    }

    /// Whether BFS-tree parents were recorded for this map. Distinguishes
    /// "no parents recorded" from "reached with no parent (the root)", which
    /// [`DistanceMap::parent`] alone cannot.
    pub fn has_parents(&self) -> bool {
        self.parent.is_some()
    }

    /// BFS-tree parent of `tn`, if parents were recorded and `tn` is reached
    /// and is not the root.
    pub fn parent(&self, tn: TemporalNode) -> Option<TemporalNode> {
        let parents = self.parent.as_ref()?;
        if !self.is_reached(tn) || tn == self.root {
            return None;
        }
        let p = parents[self.flat(tn)];
        if p == NO_PARENT {
            None
        } else {
            Some(TemporalNode::from_flat_index(p as usize, self.num_nodes))
        }
    }

    /// Reconstructs a shortest temporal path from the root to `tn` (inclusive
    /// of both end points) using the recorded parents. Returns `None` if `tn`
    /// is unreached or parents were not recorded.
    pub fn path_to(&self, tn: TemporalNode) -> Option<Vec<TemporalNode>> {
        self.parent.as_ref()?;
        if !self.is_reached(tn) {
            return None;
        }
        let mut path = vec![tn];
        let mut cur = tn;
        while cur != self.root {
            cur = self.parent(cur)?;
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Histogram of distances: `hist[k]` = number of temporal nodes at
    /// distance `k`. Index 0 counts the root.
    pub fn distance_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_distance as usize + 1];
        for &d in &self.dist {
            if d != UNREACHED {
                hist[d as usize] += 1;
            }
        }
        hist
    }

    /// Raw flat distance slice (time-major), mainly for the matrix crate's
    /// equivalence tests.
    pub fn as_flat_slice(&self) -> &[u32] {
        &self.dist
    }

    /// Re-expresses this map in the (grown) dimensions of an appended-to
    /// graph: every reached entry — and its recorded parent, if any — keeps
    /// its coordinates, and the new rows/columns start unreached.
    ///
    /// This is the *re-dimension* repair of the cache-invalidation matrix:
    /// a result whose window excludes appended snapshots is append-invariant
    /// modulo its dimensions, so repairing it is a scan of the reached set
    /// with **zero graph work**.
    ///
    /// # Panics
    /// Debug-asserts that neither dimension shrinks.
    pub fn redimensioned(&self, num_nodes: usize, num_timestamps: usize) -> Self {
        debug_assert!(num_nodes >= self.num_nodes && num_timestamps >= self.num_timestamps);
        if self.has_parents() {
            let entries: Vec<(TemporalNode, u32, Option<TemporalNode>)> = self
                .reached()
                .into_iter()
                .map(|(tn, d)| (tn, d, self.parent(tn)))
                .collect();
            DistanceMap::from_reached_with_parents(num_nodes, num_timestamps, self.root, &entries)
        } else {
            DistanceMap::from_reached(num_nodes, num_timestamps, self.root, &self.reached())
        }
    }
}

/// Sentinel source index for unreached temporal nodes.
const NO_SOURCE: u32 = u32::MAX;

/// The result of a *shared-frontier* multi-source traversal
/// ([`crate::bfs::multi_source_shared`] and its parallel twin): for every
/// reached temporal node, the distance to its *nearest* source and the
/// identity of that source.
///
/// Distances are `min_s d_s(v, t)` over the per-source distances; ties are
/// broken deterministically toward the smallest source index, so the serial
/// and parallel engines (and any oracle built from per-source maps) agree
/// exactly.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MultiSourceMap {
    num_nodes: usize,
    num_timestamps: usize,
    sources: Vec<TemporalNode>,
    dist: Vec<u32>,
    source_idx: Vec<u32>,
    reached_count: usize,
    max_distance: u32,
}

impl MultiSourceMap {
    /// Builds a map from the packed `(distance << 32) | source_index` keys the
    /// shared-frontier engines maintain (`u64::MAX` = unreached).
    pub(crate) fn from_keys(
        num_nodes: usize,
        num_timestamps: usize,
        sources: Vec<TemporalNode>,
        keys: &[u64],
    ) -> Self {
        debug_assert_eq!(keys.len(), num_nodes * num_timestamps);
        let mut dist = vec![UNREACHED; keys.len()];
        let mut source_idx = vec![NO_SOURCE; keys.len()];
        let mut reached_count = 0usize;
        let mut max_distance = 0u32;
        for (i, &key) in keys.iter().enumerate() {
            if key == u64::MAX {
                continue;
            }
            let d = (key >> 32) as u32;
            dist[i] = d;
            source_idx[i] = (key & 0xFFFF_FFFF) as u32;
            reached_count += 1;
            max_distance = max_distance.max(d);
        }
        MultiSourceMap {
            num_nodes,
            num_timestamps,
            sources,
            dist,
            source_idx,
            reached_count,
            max_distance,
        }
    }

    /// Builds a map from explicit `(temporal node, distance, source index)`
    /// entries — the constructor query layers use to re-express a
    /// shared-frontier result computed on a view (time window, reversed time)
    /// in the coordinates of the underlying graph. Entries must include the
    /// sources themselves at distance 0.
    ///
    /// # Panics
    /// Panics (in debug builds) if an entry's source index is out of range.
    pub fn from_entries(
        num_nodes: usize,
        num_timestamps: usize,
        sources: Vec<TemporalNode>,
        entries: &[(TemporalNode, u32, usize)],
    ) -> Self {
        let size = num_nodes * num_timestamps;
        let mut dist = vec![UNREACHED; size];
        let mut source_idx = vec![NO_SOURCE; size];
        for &(tn, d, s) in entries {
            debug_assert!(s < sources.len(), "source index {s} out of range");
            let i = tn.flat_index(num_nodes);
            dist[i] = d;
            source_idx[i] = s as u32;
        }
        // Counters from the *final* arrays, so duplicate entries (last one
        // wins) cannot leave a max_distance no stored slot has.
        let mut reached_count = 0usize;
        let mut max_distance = 0u32;
        for &d in &dist {
            if d != UNREACHED {
                reached_count += 1;
                max_distance = max_distance.max(d);
            }
        }
        MultiSourceMap {
            num_nodes,
            num_timestamps,
            sources,
            dist,
            source_idx,
            reached_count,
            max_distance,
        }
    }

    #[inline]
    fn flat(&self, tn: TemporalNode) -> usize {
        tn.flat_index(self.num_nodes)
    }

    /// The sources the shared frontier was seeded with, in seed order.
    pub fn sources(&self) -> &[TemporalNode] {
        &self.sources
    }

    /// Number of sources (duplicates included).
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Size of the node universe of the traversed graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of snapshots of the traversed graph.
    pub fn num_timestamps(&self) -> usize {
        self.num_timestamps
    }

    /// Distance from the nearest source to `tn`, or `None` if unreached.
    #[inline]
    pub fn distance(&self, tn: TemporalNode) -> Option<u32> {
        let d = self.dist[self.flat(tn)];
        if d == UNREACHED {
            None
        } else {
            Some(d)
        }
    }

    /// Whether any source reaches `tn`.
    #[inline]
    pub fn is_reached(&self, tn: TemporalNode) -> bool {
        self.dist[self.flat(tn)] != UNREACHED
    }

    /// Index (into [`MultiSourceMap::sources`]) of the nearest source of
    /// `tn`: the smallest index among the sources at minimum distance.
    #[inline]
    pub fn nearest_source_index(&self, tn: TemporalNode) -> Option<usize> {
        let s = self.source_idx[self.flat(tn)];
        if s == NO_SOURCE {
            None
        } else {
            Some(s as usize)
        }
    }

    /// The nearest source of `tn` together with the distance from it.
    pub fn nearest_source(&self, tn: TemporalNode) -> Option<(TemporalNode, u32)> {
        let i = self.flat(tn);
        let s = self.source_idx[i];
        if s == NO_SOURCE {
            None
        } else {
            Some((self.sources[s as usize], self.dist[i]))
        }
    }

    /// Number of reached temporal nodes, sources included.
    pub fn num_reached(&self) -> usize {
        self.reached_count
    }

    /// The largest nearest-source distance — the eccentricity of the source
    /// *set* (not the maximum per-source eccentricity, which a shared
    /// frontier cannot observe).
    pub fn max_distance(&self) -> u32 {
        self.max_distance
    }

    /// All reached temporal nodes with their nearest-source distances, in
    /// flat-index (time-major) order.
    pub fn reached(&self) -> Vec<(TemporalNode, u32)> {
        self.dist
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != UNREACHED)
            .map(|(i, &d)| (TemporalNode::from_flat_index(i, self.num_nodes), d))
            .collect()
    }

    /// All reached temporal nodes with their nearest-source distance and
    /// nearest-source index, in flat-index order.
    pub fn reached_with_sources(&self) -> Vec<(TemporalNode, u32, usize)> {
        self.dist
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != UNREACHED)
            .map(|(i, &d)| {
                (
                    TemporalNode::from_flat_index(i, self.num_nodes),
                    d,
                    self.source_idx[i] as usize,
                )
            })
            .collect()
    }

    /// The distinct node identifiers reached at any snapshot by any source.
    pub fn reached_node_ids(&self) -> Vec<NodeId> {
        let mut seen = vec![false; self.num_nodes];
        for (i, &d) in self.dist.iter().enumerate() {
            if d != UNREACHED {
                seen[i % self.num_nodes] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(v, _)| NodeId::from_index(v))
            .collect()
    }

    /// Raw flat distance slice (time-major), `u32::MAX` = unreached.
    pub fn as_flat_slice(&self) -> &[u32] {
        &self.dist
    }

    /// Re-expresses this map in the (grown) dimensions of an appended-to
    /// graph; the shared-frontier twin of [`DistanceMap::redimensioned`]
    /// (reached entries and their source attributions keep their
    /// coordinates, new rows/columns start unreached; zero graph work).
    ///
    /// # Panics
    /// Debug-asserts that neither dimension shrinks.
    pub fn redimensioned(&self, num_nodes: usize, num_timestamps: usize) -> Self {
        debug_assert!(num_nodes >= self.num_nodes && num_timestamps >= self.num_timestamps);
        MultiSourceMap::from_entries(
            num_nodes,
            num_timestamps,
            self.sources.clone(),
            &self.reached_with_sources(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_map() -> DistanceMap {
        // 3 nodes, 2 timestamps.
        let root = TemporalNode::from_raw(0, 0);
        let mut m = DistanceMap::new(3, 2, root, true);
        assert!(m.try_reach(TemporalNode::from_raw(1, 0), 1, root));
        assert!(m.try_reach(
            TemporalNode::from_raw(1, 1),
            2,
            TemporalNode::from_raw(1, 0)
        ));
        m
    }

    #[test]
    fn root_has_distance_zero() {
        let m = toy_map();
        assert_eq!(m.distance(TemporalNode::from_raw(0, 0)), Some(0));
        assert_eq!(m.root(), TemporalNode::from_raw(0, 0));
    }

    #[test]
    fn try_reach_rejects_duplicates() {
        let mut m = toy_map();
        assert!(!m.try_reach(
            TemporalNode::from_raw(1, 0),
            7,
            TemporalNode::from_raw(0, 0)
        ));
        assert_eq!(m.distance(TemporalNode::from_raw(1, 0)), Some(1));
    }

    #[test]
    fn counters_track_reached_nodes_and_depth() {
        let m = toy_map();
        assert_eq!(m.num_reached(), 3);
        assert_eq!(m.max_distance(), 2);
        assert_eq!(m.distance_histogram(), vec![1, 1, 1]);
    }

    #[test]
    fn layers_partition_reached_nodes() {
        let m = toy_map();
        assert_eq!(m.layer(0), vec![TemporalNode::from_raw(0, 0)]);
        assert_eq!(m.layer(1), vec![TemporalNode::from_raw(1, 0)]);
        assert_eq!(m.layer(2), vec![TemporalNode::from_raw(1, 1)]);
        assert!(m.layer(3).is_empty());
    }

    #[test]
    fn reached_node_ids_deduplicate_across_time() {
        let m = toy_map();
        assert_eq!(m.reached_node_ids(), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn earliest_reach_times_pick_minimum_snapshot() {
        let m = toy_map();
        let times = m.earliest_reach_times();
        assert!(times.contains(&(NodeId(1), TimeIndex(0))));
        assert!(times.contains(&(NodeId(0), TimeIndex(0))));
        assert_eq!(times.len(), 2);
    }

    #[test]
    fn path_reconstruction_follows_parents() {
        let m = toy_map();
        let path = m.path_to(TemporalNode::from_raw(1, 1)).unwrap();
        assert_eq!(
            path,
            vec![
                TemporalNode::from_raw(0, 0),
                TemporalNode::from_raw(1, 0),
                TemporalNode::from_raw(1, 1),
            ]
        );
        assert_eq!(m.path_to(TemporalNode::from_raw(2, 1)), None);
    }

    #[test]
    fn parent_of_root_is_none() {
        let m = toy_map();
        assert_eq!(m.parent(TemporalNode::from_raw(0, 0)), None);
    }

    #[test]
    fn multi_source_map_constructors_agree() {
        // 3 nodes × 2 snapshots; sources n0@t0 (idx 0) and n2@t0 (idx 1).
        let sources = vec![TemporalNode::from_raw(0, 0), TemporalNode::from_raw(2, 0)];
        let mut keys = vec![u64::MAX; 6];
        keys[TemporalNode::from_raw(0, 0).flat_index(3)] = 0;
        keys[TemporalNode::from_raw(2, 0).flat_index(3)] = 1;
        keys[TemporalNode::from_raw(1, 0).flat_index(3)] = 1u64 << 32; // d=1 from src 0
        keys[TemporalNode::from_raw(1, 1).flat_index(3)] = (2u64 << 32) | 1; // d=2 from src 1
        let from_keys = MultiSourceMap::from_keys(3, 2, sources.clone(), &keys);
        let from_entries =
            MultiSourceMap::from_entries(3, 2, sources, &from_keys.reached_with_sources());

        for m in [&from_keys, &from_entries] {
            assert_eq!(m.num_reached(), 4);
            assert_eq!(m.max_distance(), 2);
            assert_eq!(m.distance(TemporalNode::from_raw(1, 0)), Some(1));
            assert_eq!(
                m.nearest_source_index(TemporalNode::from_raw(1, 0)),
                Some(0)
            );
            assert_eq!(
                m.nearest_source(TemporalNode::from_raw(1, 1)),
                Some((TemporalNode::from_raw(2, 0), 2))
            );
            assert_eq!(m.distance(TemporalNode::from_raw(0, 1)), None);
            assert_eq!(m.nearest_source(TemporalNode::from_raw(0, 1)), None);
            assert_eq!(m.reached_node_ids(), vec![NodeId(0), NodeId(1), NodeId(2)]);
        }
        assert_eq!(from_keys.as_flat_slice(), from_entries.as_flat_slice());
    }

    #[test]
    fn from_entries_duplicate_entries_keep_counters_consistent() {
        // Last entry wins the slot; counters must describe the final arrays,
        // not the overwritten ones.
        let sources = vec![TemporalNode::from_raw(0, 0)];
        let tn = TemporalNode::from_raw(1, 0);
        let m = MultiSourceMap::from_entries(
            2,
            1,
            sources,
            &[(TemporalNode::from_raw(0, 0), 0, 0), (tn, 5, 0), (tn, 2, 0)],
        );
        assert_eq!(m.distance(tn), Some(2));
        assert_eq!(m.max_distance(), 2);
        assert_eq!(m.num_reached(), 2);
    }
}
