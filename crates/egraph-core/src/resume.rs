//! Resumable traversal state for *incremental re-search* over a growing
//! evolving graph.
//!
//! The evolving-graph model is append-only in time: a new snapshot's label is
//! strictly later than every existing one, so every new causal edge points
//! *into* the new snapshot and every new static edge lives *inside* it. A
//! forward traversal therefore only ever **gains** reachability as the graph
//! grows — the distances (and arrivals) of previously covered temporal nodes
//! are final the moment they are computed. This module captures exactly the
//! state needed to exploit that:
//!
//! * [`ResumableBfs`] — the flat distance table of Algorithm 1 plus a
//!   per-node *frontier snapshot* (`node_best`: the minimum distance at which
//!   each node was ever reached). Appending snapshot `t_new` seeds each node
//!   active at `t_new` with `node_best + 1` (its cheapest causal entry) and
//!   relaxes static edges inside `t_new` with a bucket BFS — work
//!   proportional to the new snapshot, not the history.
//! * [`ResumableForemost`] — the earliest-arrival table of the foremost
//!   sweep. Appending `t_new` can only create arrivals *at* `t_new`, found by
//!   one static BFS inside the new snapshot seeded from already-reached
//!   nodes.
//! * [`ResumableShared`] — the packed `(dist << 32) | source_index` claim
//!   keys of the shared-frontier engines, plus a per-node minimum key. One
//!   hop adds `1 << 32` to a key (distance + 1, same source attribution), so
//!   the hop engine's bucket BFS carries over verbatim on packed keys and
//!   the extension reproduces the engines' deterministic
//!   smallest-source-index tie-break exactly.
//! * [`StableCoreResettle`] — the stable-core repair for *time-reversed*
//!   traversals (backward XOR `.reverse()`), after Afarin et al.'s
//!   stable-vertex analysis: across an append every previously settled value
//!   is stable, because a reversed traversal from a fixed-time root only
//!   ever visits times at or before that root — strictly earlier than any
//!   appended snapshot. The engine does not *assume* that theorem: it scans
//!   the sealed delta's touched set for an unstable fringe (any touched node
//!   holding a value at or past the new snapshot) and reports it, so callers
//!   re-settle exactly the fringe — provably empty under the append-only
//!   contract — and can fall back to recomputation if the contract is ever
//!   violated. Settled work is therefore `O(|touched|)` with zero graph
//!   traversal.
//!
//! [`ResumableBfs`] also resumes BFS-tree *parents* when its source map
//! recorded them: the retained per-node frontier remembers the earliest
//! snapshot achieving each node's best distance, so a causal seed's parent
//! is known without rescanning history, and static relaxations record their
//! proposer. Parent trees are not unique — any parent at distance `d − 1`
//! across a valid edge witnesses a shortest path — and the extension
//! guarantees exactly that invariant (the workspace differential suites
//! check parent *validity*, not pointer equality with a from-scratch run).
//!
//! All engines are pinned to their from-scratch counterparts by the unit
//! tests below and by the workspace's `live_stream_differential` and
//! `cache_matrix_fuzz` suites; the `incremental_vs_recompute` bench asserts
//! the delta-proportional work claims with
//! [`crate::instrument::CountingView`] counters.

use std::collections::BTreeMap;

use crate::bfs::bfs;
use crate::distance::{DistanceMap, MultiSourceMap, UNREACHED};
use crate::error::{GraphError, Result};
use crate::foremost::{earliest_arrival, ForemostResult};
use crate::graph::EvolvingGraph;
use crate::ids::{NodeId, TemporalNode, TimeIndex};

/// Sentinel parent for unreached temporal nodes / the root.
const NO_PARENT: u64 = u64::MAX;

/// Packed-key increment for one hop: distance + 1, same source attribution.
const HOP: u64 = 1 << 32;

/// Resumable state of a forward hop-distance BFS (Algorithm 1).
///
/// The state covers a prefix of the graph's snapshots. [`ResumableBfs::extend_snapshot`]
/// advances the covered prefix by one snapshot in time proportional to that
/// snapshot's contents; [`ResumableBfs::to_distance_map`] materialises the
/// ordinary [`DistanceMap`] a from-scratch [`bfs`] over the covered prefix
/// would produce.
#[derive(Clone, Debug)]
pub struct ResumableBfs {
    root: TemporalNode,
    num_nodes: usize,
    /// Snapshots covered so far; `dist` has `num_nodes * num_timestamps`
    /// entries in time-major layout.
    num_timestamps: usize,
    dist: Vec<u32>,
    /// The frontier snapshot: `node_best[v]` = minimum distance at which `v`
    /// was reached at any covered snapshot (`UNREACHED` if never).
    node_best: Vec<u32>,
    /// Earliest covered snapshot index achieving `node_best[v]` — the
    /// witness a causal seed names as its parent. Meaningless where
    /// `node_best[v] == UNREACHED`.
    node_best_time: Vec<u32>,
    /// BFS-tree parents as flat indices (`NO_PARENT` = root / unreached),
    /// present iff the source map recorded parents.
    parent: Option<Vec<u64>>,
}

impl ResumableBfs {
    /// Runs a full forward BFS from `root` and captures resumable state.
    ///
    /// # Errors
    /// The same root-validation errors as [`bfs`].
    pub fn start<G: EvolvingGraph>(graph: &G, root: TemporalNode) -> Result<Self> {
        Ok(Self::from_map(&bfs(graph, root)?))
    }

    /// Captures resumable state from an already-computed forward distance
    /// map (e.g. one produced through a query layer). The map must be a
    /// *forward* full- or suffix-window result in the coordinates of the
    /// graph that will later be extended; backward or time-reversed maps
    /// cannot be resumed (see the module docs). If the map recorded
    /// BFS-tree parents, the extension maintains them (see the module docs
    /// on parent validity).
    pub fn from_map(map: &DistanceMap) -> Self {
        let num_nodes = map.num_nodes();
        let num_timestamps = map.num_timestamps();
        let dist = map.as_flat_slice().to_vec();
        let mut node_best = vec![UNREACHED; num_nodes];
        let mut node_best_time = vec![0u32; num_nodes];
        let mut parent = map.has_parents().then(|| vec![NO_PARENT; dist.len()]);
        for (i, &d) in dist.iter().enumerate() {
            if d == UNREACHED {
                continue;
            }
            let v = i % num_nodes;
            // Scanning in flat (time-major) order, a strict improvement is
            // the *earliest* snapshot achieving the final minimum.
            if d < node_best[v] {
                node_best[v] = d;
                node_best_time[v] = (i / num_nodes) as u32;
            }
            if let Some(p) = parent.as_mut() {
                let tn = TemporalNode::from_flat_index(i, num_nodes);
                if let Some(par) = map.parent(tn) {
                    p[i] = par.flat_index(num_nodes) as u64;
                }
            }
        }
        ResumableBfs {
            root: map.root(),
            num_nodes,
            num_timestamps,
            dist,
            node_best,
            node_best_time,
            parent,
        }
    }

    /// The root the traversal started from.
    pub fn root(&self) -> TemporalNode {
        self.root
    }

    /// Number of snapshots covered so far.
    pub fn covered_timestamps(&self) -> usize {
        self.num_timestamps
    }

    /// Size of the node universe the state is laid out for.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The frontier snapshot: minimum distance at which `v` was ever
    /// reached, or `None`.
    pub fn best_distance(&self, v: NodeId) -> Option<u32> {
        match self.node_best.get(v.index()) {
            Some(&d) if d != UNREACHED => Some(d),
            _ => None,
        }
    }

    /// Distance of a covered temporal node, or `None` if unreached (or not
    /// yet covered).
    pub fn distance(&self, tn: TemporalNode) -> Option<u32> {
        if tn.node.index() >= self.num_nodes || tn.time.index() >= self.num_timestamps {
            return None;
        }
        match self.dist[tn.flat_index(self.num_nodes)] {
            UNREACHED => None,
            d => Some(d),
        }
    }

    /// Re-lays the state out for a grown node universe. New nodes start
    /// unreached everywhere. Shrinking is not supported (no-op).
    pub fn grow_nodes(&mut self, num_nodes: usize) {
        if num_nodes <= self.num_nodes {
            return;
        }
        let mut dist = vec![UNREACHED; num_nodes * self.num_timestamps];
        for t in 0..self.num_timestamps {
            let src = &self.dist[t * self.num_nodes..(t + 1) * self.num_nodes];
            dist[t * num_nodes..t * num_nodes + self.num_nodes].copy_from_slice(src);
        }
        if let Some(old) = self.parent.take() {
            // Parent pointers are flat indices, so they must be *remapped*,
            // not just copied: a flat index bakes in the row stride.
            let mut parent = vec![NO_PARENT; num_nodes * self.num_timestamps];
            for t in 0..self.num_timestamps {
                for v in 0..self.num_nodes {
                    let p = old[t * self.num_nodes + v];
                    if p != NO_PARENT {
                        let tn = TemporalNode::from_flat_index(p as usize, self.num_nodes);
                        parent[t * num_nodes + v] = tn.flat_index(num_nodes) as u64;
                    }
                }
            }
            self.parent = Some(parent);
        }
        self.dist = dist;
        self.node_best.resize(num_nodes, UNREACHED);
        self.node_best_time.resize(num_nodes, 0);
        self.num_nodes = num_nodes;
    }

    /// Extends coverage by one snapshot — the next uncovered index,
    /// `self.covered_timestamps()` — doing work proportional to that
    /// snapshot's contents.
    ///
    /// `touched` must be exactly the nodes active at the new snapshot (the
    /// end points of its static edges); the live-graph layer records this
    /// per seal. Because all causal edges into the new snapshot come from
    /// the same node at an earlier active time, each touched node's cheapest
    /// entry costs `node_best + 1`; static edges inside the snapshot then
    /// relax those seeds with a bucket (Dial) BFS.
    ///
    /// # Errors
    /// [`GraphError::TimeOutOfRange`] if the graph does not contain the next
    /// snapshot yet, [`GraphError::NodeOutOfRange`] if the graph's node
    /// universe outgrew the state (call [`ResumableBfs::grow_nodes`] first).
    pub fn extend_snapshot<G: EvolvingGraph>(
        &mut self,
        graph: &G,
        touched: &[NodeId],
    ) -> Result<()> {
        let t_new = TimeIndex::from_index(self.num_timestamps);
        if t_new.index() >= graph.num_timestamps() {
            return Err(GraphError::TimeOutOfRange {
                time: t_new,
                num_timestamps: graph.num_timestamps(),
            });
        }
        if graph.num_nodes() > self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: NodeId::from_index(self.num_nodes),
                num_nodes: graph.num_nodes(),
            });
        }
        debug_assert!(
            touched.iter().all(|&v| graph.is_active(v, t_new)),
            "touched list must contain only nodes active at the new snapshot"
        );

        // Seed every touched node with its cheapest causal entry, then relax
        // static edges inside the new snapshot in increasing-distance order.
        // Each bucket entry carries the flat index of the parent proposing
        // it: a causal seed's parent is the earliest snapshot achieving the
        // node's best distance, a static relaxation's parent is its
        // proposer at the new snapshot. First settle at the minimum
        // distance wins, so every recorded parent sits at distance d − 1
        // across a valid edge.
        let track_parents = self.parent.is_some();
        let mut buckets: BTreeMap<u32, Vec<(NodeId, u64)>> = BTreeMap::new();
        for &v in touched {
            let best = self.node_best[v.index()];
            if best != UNREACHED {
                let witness = self.node_best_time[v.index()] as u64 * self.num_nodes as u64
                    + v.index() as u64;
                buckets.entry(best + 1).or_default().push((v, witness));
            }
        }
        let mut new_row = vec![UNREACHED; self.num_nodes];
        let mut new_parents = track_parents.then(|| vec![NO_PARENT; self.num_nodes]);
        let row_base = self.num_timestamps * self.num_nodes;
        while let Some((&d, _)) = buckets.iter().next() {
            let nodes = buckets.remove(&d).expect("key taken from the map");
            for (v, from) in nodes {
                if new_row[v.index()] <= d {
                    continue; // settled earlier at an equal or smaller distance
                }
                new_row[v.index()] = d;
                if let Some(ps) = new_parents.as_mut() {
                    ps[v.index()] = from;
                }
                let proposer = (row_base + v.index()) as u64;
                graph.for_each_static_out(v, t_new, &mut |w| {
                    if new_row[w.index()] > d + 1 {
                        buckets.entry(d + 1).or_default().push((w, proposer));
                    }
                });
            }
        }

        for (v, &d) in new_row.iter().enumerate() {
            if d < self.node_best[v] {
                self.node_best[v] = d;
                self.node_best_time[v] = self.num_timestamps as u32;
            }
        }
        self.dist.extend_from_slice(&new_row);
        if let (Some(parent), Some(new_ps)) = (self.parent.as_mut(), new_parents) {
            parent.extend_from_slice(&new_ps);
        }
        self.num_timestamps += 1;
        Ok(())
    }

    /// Materialises the covered prefix as an ordinary [`DistanceMap`] —
    /// distance-for-distance what a from-scratch [`bfs`] over that prefix
    /// produces. When parents are tracked they are materialised too; the
    /// tree is *a* valid BFS tree over those distances (see the module
    /// docs), not necessarily the one a from-scratch run's visit order
    /// would pick.
    pub fn to_distance_map(&self) -> DistanceMap {
        if let Some(parent) = self.parent.as_ref() {
            let reached: Vec<(TemporalNode, u32, Option<TemporalNode>)> = self
                .dist
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d != UNREACHED)
                .map(|(i, &d)| {
                    let p = parent[i];
                    let p = (p != NO_PARENT)
                        .then(|| TemporalNode::from_flat_index(p as usize, self.num_nodes));
                    (TemporalNode::from_flat_index(i, self.num_nodes), d, p)
                })
                .collect();
            return DistanceMap::from_reached_with_parents(
                self.num_nodes,
                self.num_timestamps,
                self.root,
                &reached,
            );
        }
        let reached: Vec<(TemporalNode, u32)> = self
            .dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != UNREACHED)
            .map(|(i, &d)| (TemporalNode::from_flat_index(i, self.num_nodes), d))
            .collect();
        DistanceMap::from_reached(self.num_nodes, self.num_timestamps, self.root, &reached)
    }
}

/// Resumable state of a forward earliest-arrival ("foremost") sweep.
///
/// Mirrors [`ResumableBfs`] for [`earliest_arrival`]: arrivals of
/// already-reached nodes are final (a new snapshot is strictly later), so
/// extending by one snapshot is a single static BFS inside it, seeded from
/// the reached nodes that are active there.
#[derive(Clone, Debug)]
pub struct ResumableForemost {
    root: TemporalNode,
    num_timestamps: usize,
    arrival: Vec<Option<TimeIndex>>,
}

impl ResumableForemost {
    /// Runs a full sweep from `root` and captures resumable state. Like
    /// [`earliest_arrival`], inactive or out-of-range roots are tolerated
    /// (they reach nothing); query layers validate separately.
    pub fn start<G: EvolvingGraph>(graph: &G, root: TemporalNode) -> Self {
        Self::from_result(&earliest_arrival(graph, root), graph.num_timestamps())
    }

    /// Captures resumable state from an already-computed *forward* arrival
    /// table covering `num_timestamps` snapshots of the graph that will
    /// later be extended. Reversed (latest-departure) tables cannot be
    /// resumed.
    pub fn from_result(result: &ForemostResult, num_timestamps: usize) -> Self {
        ResumableForemost {
            root: result.root(),
            num_timestamps,
            arrival: result.arrivals().to_vec(),
        }
    }

    /// The root of the sweep.
    pub fn root(&self) -> TemporalNode {
        self.root
    }

    /// Number of snapshots covered so far.
    pub fn covered_timestamps(&self) -> usize {
        self.num_timestamps
    }

    /// Size of the node universe the state is laid out for.
    pub fn num_nodes(&self) -> usize {
        self.arrival.len()
    }

    /// The covered arrival of `v`, if reached.
    pub fn arrival(&self, v: NodeId) -> Option<TimeIndex> {
        self.arrival.get(v.index()).copied().flatten()
    }

    /// Extends the state for a grown node universe; new nodes start
    /// unreached.
    pub fn grow_nodes(&mut self, num_nodes: usize) {
        if num_nodes > self.arrival.len() {
            self.arrival.resize(num_nodes, None);
        }
    }

    /// Extends coverage by one snapshot (the next uncovered index). New
    /// arrivals can only happen *at* the new snapshot: one static BFS inside
    /// it, seeded from the already-reached `touched` nodes, finds them all.
    /// `touched` must be exactly the nodes active at the new snapshot.
    ///
    /// # Errors
    /// [`GraphError::TimeOutOfRange`] / [`GraphError::NodeOutOfRange`] as
    /// for [`ResumableBfs::extend_snapshot`].
    pub fn extend_snapshot<G: EvolvingGraph>(
        &mut self,
        graph: &G,
        touched: &[NodeId],
    ) -> Result<()> {
        let t_new = TimeIndex::from_index(self.num_timestamps);
        if t_new.index() >= graph.num_timestamps() {
            return Err(GraphError::TimeOutOfRange {
                time: t_new,
                num_timestamps: graph.num_timestamps(),
            });
        }
        if graph.num_nodes() > self.arrival.len() {
            return Err(GraphError::NodeOutOfRange {
                node: NodeId::from_index(self.arrival.len()),
                num_nodes: graph.num_nodes(),
            });
        }
        debug_assert!(
            touched.iter().all(|&v| graph.is_active(v, t_new)),
            "touched list must contain only nodes active at the new snapshot"
        );

        let mut frontier: Vec<NodeId> = touched
            .iter()
            .copied()
            .filter(|&v| self.arrival[v.index()].is_some())
            .collect();
        while let Some(u) = frontier.pop() {
            graph.for_each_static_out(u, t_new, &mut |w| {
                let slot = &mut self.arrival[w.index()];
                if slot.is_none() {
                    *slot = Some(t_new);
                    frontier.push(w);
                }
            });
        }
        self.num_timestamps += 1;
        Ok(())
    }

    /// Materialises the covered prefix as an ordinary [`ForemostResult`].
    pub fn to_result(&self) -> ForemostResult {
        ForemostResult::from_arrivals(self.root, self.arrival.clone())
    }
}

/// Resumable state of a forward *shared-frontier* multi-source traversal
/// ([`crate::bfs::multi_source_shared`] and its parallel twin).
///
/// The retained state is exactly the engines' packed claim keys —
/// `(distance << 32) | source_index`, `u64::MAX` = unreached — plus a
/// per-node minimum key over the covered snapshots. One hop adds `HOP`
/// (`1 << 32`) to a key: distance + 1 with the source attribution carried
/// along, so the same bucket BFS that extends [`ResumableBfs`] runs on
/// packed keys and settles every temporal node of the appended snapshot at
/// its minimum key. Minimum packed key *is* the engines' answer — nearest
/// source first, ties to the smallest source index — so the extension is
/// key-for-key identical to a from-scratch run, duplicates and ties
/// included.
#[derive(Clone, Debug)]
pub struct ResumableShared {
    sources: Vec<TemporalNode>,
    num_nodes: usize,
    num_timestamps: usize,
    /// Packed `(dist << 32) | source_index` per temporal node, time-major.
    key: Vec<u64>,
    /// Minimum packed key at which each node was claimed at any covered
    /// snapshot (`u64::MAX` if never) — the shared-frontier analogue of
    /// [`ResumableBfs`]'s `node_best`.
    node_best: Vec<u64>,
}

impl ResumableShared {
    /// Runs a full shared-frontier traversal and captures resumable state.
    ///
    /// # Errors
    /// The same source-validation errors as
    /// [`multi_source_shared`](crate::bfs::multi_source_shared).
    pub fn start<G: EvolvingGraph>(graph: &G, sources: &[TemporalNode]) -> Result<Self> {
        Ok(Self::from_map(&crate::bfs::multi_source_shared(
            graph, sources,
        )?))
    }

    /// Captures resumable state from an already-computed *forward*
    /// unbounded-end shared-frontier map in the coordinates of the graph
    /// that will later be extended.
    pub fn from_map(map: &MultiSourceMap) -> Self {
        let num_nodes = map.num_nodes();
        let num_timestamps = map.num_timestamps();
        let mut key = vec![u64::MAX; num_nodes * num_timestamps];
        for (tn, d, s) in map.reached_with_sources() {
            key[tn.flat_index(num_nodes)] = ((d as u64) << 32) | s as u64;
        }
        let mut node_best = vec![u64::MAX; num_nodes];
        for (i, &k) in key.iter().enumerate() {
            let v = i % num_nodes;
            if k < node_best[v] {
                node_best[v] = k;
            }
        }
        ResumableShared {
            sources: map.sources().to_vec(),
            num_nodes,
            num_timestamps,
            key,
            node_best,
        }
    }

    /// The sources the frontier was seeded with, in seed order.
    pub fn sources(&self) -> &[TemporalNode] {
        &self.sources
    }

    /// Number of snapshots covered so far.
    pub fn covered_timestamps(&self) -> usize {
        self.num_timestamps
    }

    /// Size of the node universe the state is laid out for.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Re-lays the state out for a grown node universe. New nodes start
    /// unreached everywhere. Shrinking is not supported (no-op).
    pub fn grow_nodes(&mut self, num_nodes: usize) {
        if num_nodes <= self.num_nodes {
            return;
        }
        let mut key = vec![u64::MAX; num_nodes * self.num_timestamps];
        for t in 0..self.num_timestamps {
            let src = &self.key[t * self.num_nodes..(t + 1) * self.num_nodes];
            key[t * num_nodes..t * num_nodes + self.num_nodes].copy_from_slice(src);
        }
        self.key = key;
        self.node_best.resize(num_nodes, u64::MAX);
        self.num_nodes = num_nodes;
    }

    /// Extends coverage by one snapshot (the next uncovered index), doing
    /// work proportional to that snapshot's contents. `touched` must be
    /// exactly the nodes active at the new snapshot.
    ///
    /// # Errors
    /// [`GraphError::TimeOutOfRange`] / [`GraphError::NodeOutOfRange`] as
    /// for [`ResumableBfs::extend_snapshot`].
    pub fn extend_snapshot<G: EvolvingGraph>(
        &mut self,
        graph: &G,
        touched: &[NodeId],
    ) -> Result<()> {
        let t_new = TimeIndex::from_index(self.num_timestamps);
        if t_new.index() >= graph.num_timestamps() {
            return Err(GraphError::TimeOutOfRange {
                time: t_new,
                num_timestamps: graph.num_timestamps(),
            });
        }
        if graph.num_nodes() > self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: NodeId::from_index(self.num_nodes),
                num_nodes: graph.num_nodes(),
            });
        }
        debug_assert!(
            touched.iter().all(|&v| graph.is_active(v, t_new)),
            "touched list must contain only nodes active at the new snapshot"
        );

        // Identical structure to the hop extension, on packed keys: seed
        // every touched node with its cheapest causal claim, relax static
        // edges inside the new snapshot in increasing-key order. The first
        // settle at the minimum key carries the winning (distance, source)
        // pair by construction.
        let mut buckets: BTreeMap<u64, Vec<NodeId>> = BTreeMap::new();
        for &v in touched {
            let best = self.node_best[v.index()];
            if best != u64::MAX {
                buckets.entry(best + HOP).or_default().push(v);
            }
        }
        let mut new_row = vec![u64::MAX; self.num_nodes];
        while let Some((&k, _)) = buckets.iter().next() {
            let nodes = buckets.remove(&k).expect("key taken from the map");
            for v in nodes {
                if new_row[v.index()] <= k {
                    continue; // settled earlier at an equal or smaller key
                }
                new_row[v.index()] = k;
                graph.for_each_static_out(v, t_new, &mut |w| {
                    if new_row[w.index()] > k + HOP {
                        buckets.entry(k + HOP).or_default().push(w);
                    }
                });
            }
        }

        for (v, &k) in new_row.iter().enumerate() {
            if k < self.node_best[v] {
                self.node_best[v] = k;
            }
        }
        self.key.extend_from_slice(&new_row);
        self.num_timestamps += 1;
        Ok(())
    }

    /// Materialises the covered prefix as an ordinary [`MultiSourceMap`] —
    /// key-for-key what a from-scratch
    /// [`multi_source_shared`](crate::bfs::multi_source_shared) over that
    /// prefix produces.
    pub fn to_map(&self) -> MultiSourceMap {
        MultiSourceMap::from_keys(
            self.num_nodes,
            self.num_timestamps,
            self.sources.clone(),
            &self.key,
        )
    }
}

/// Stable-core repair state for *time-reversed* traversals (backward XOR
/// `.reverse()`), after Afarin et al.'s stable-vertex analysis: across an
/// append, a reversed traversal's settled values are the stable core —
/// reached times never exceed the (fixed) source times, which are strictly
/// earlier than any appended snapshot — and the only candidates for an
/// unstable fringe are the sealed delta's touched nodes.
///
/// The retained summary is one latest-reached time per node, rebuilt from
/// the prior value map in `O(result)`. [`StableCoreResettle::extend_snapshot`]
/// *verifies* stability instead of assuming it: it scans the touched set for
/// nodes whose retained value could flow into the new snapshot (a value at
/// or past it — impossible under the append-only contract) and returns that
/// fringe for the caller to re-settle, falling back to recomputation if it
/// is ever non-empty. The work is `O(|touched|)` per seal with **zero**
/// graph traversal, which the `incremental_vs_recompute` bench pins via
/// [`crate::instrument::CountingView`].
#[derive(Clone, Debug)]
pub struct StableCoreResettle {
    num_nodes: usize,
    num_timestamps: usize,
    /// Latest covered snapshot at which each node holds a value (`None` =
    /// never reached by the traversal).
    node_latest: Vec<Option<TimeIndex>>,
}

impl StableCoreResettle {
    /// Builds the per-node stable-core summary from the reached temporal
    /// nodes of a prior value map covering `num_timestamps` snapshots.
    pub fn from_reached_times(
        num_nodes: usize,
        num_timestamps: usize,
        reached: impl IntoIterator<Item = TemporalNode>,
    ) -> Self {
        let mut node_latest: Vec<Option<TimeIndex>> = vec![None; num_nodes];
        for tn in reached {
            if tn.node.index() >= num_nodes {
                continue;
            }
            let slot = &mut node_latest[tn.node.index()];
            if slot.map(|t| tn.time > t).unwrap_or(true) {
                *slot = Some(tn.time);
            }
        }
        StableCoreResettle {
            num_nodes,
            num_timestamps,
            node_latest,
        }
    }

    /// Number of snapshots covered so far.
    pub fn covered_timestamps(&self) -> usize {
        self.num_timestamps
    }

    /// Size of the node universe the state is laid out for.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Extends the summary for a grown node universe; new nodes hold no
    /// value.
    pub fn grow_nodes(&mut self, num_nodes: usize) {
        if num_nodes > self.num_nodes {
            self.node_latest.resize(num_nodes, None);
            self.num_nodes = num_nodes;
        }
    }

    /// Advances coverage over the next snapshot, returning the **unstable
    /// fringe**: touched nodes whose retained value could flow into the new
    /// snapshot and therefore must be re-settled. Under the append-only
    /// contract the fringe is provably empty (every retained value predates
    /// the new snapshot) and coverage advances; a non-empty fringe means
    /// the contract was violated — coverage does *not* advance and the
    /// caller should recompute.
    ///
    /// # Errors
    /// [`GraphError::TimeOutOfRange`] / [`GraphError::NodeOutOfRange`] as
    /// for [`ResumableBfs::extend_snapshot`].
    pub fn extend_snapshot<G: EvolvingGraph>(
        &mut self,
        graph: &G,
        touched: &[NodeId],
    ) -> Result<Vec<NodeId>> {
        let t_new = TimeIndex::from_index(self.num_timestamps);
        if t_new.index() >= graph.num_timestamps() {
            return Err(GraphError::TimeOutOfRange {
                time: t_new,
                num_timestamps: graph.num_timestamps(),
            });
        }
        if graph.num_nodes() > self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: NodeId::from_index(self.num_nodes),
                num_nodes: graph.num_nodes(),
            });
        }
        let fringe: Vec<NodeId> = touched
            .iter()
            .copied()
            .filter(|&v| {
                self.node_latest[v.index()]
                    .map(|t| t.index() >= t_new.index())
                    .unwrap_or(false)
            })
            .collect();
        if fringe.is_empty() {
            self.num_timestamps += 1;
        }
        Ok(fringe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyListGraph;
    use crate::examples::paper_figure1;

    /// A deterministic xorshift stream for the randomized pinning tests.
    struct Xs(u64);
    impl Xs {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    fn touched_at(g: &AdjacencyListGraph, t: TimeIndex) -> Vec<NodeId> {
        g.active_at(t).into_iter().map(|tn| tn.node).collect()
    }

    fn random_growth_trace(seed: u64, n: usize, steps: usize) -> Vec<Vec<(u32, u32)>> {
        let mut rng = Xs(seed | 1);
        (0..steps)
            .map(|_| {
                let edges = 1 + (rng.next() % (2 * n as u64)) as usize;
                (0..edges)
                    .filter_map(|_| {
                        let u = (rng.next() % n as u64) as u32;
                        let v = (rng.next() % n as u64) as u32;
                        (u != v).then_some((u, v))
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn extension_matches_from_scratch_bfs_on_random_growth() {
        for seed in [3u64, 17, 99, 0xBEEF] {
            let n = 24;
            let batches = random_growth_trace(seed, n, 6);
            let mut g = AdjacencyListGraph::directed_with_unit_times(n, 1);
            for &(u, v) in &batches[0] {
                g.add_edge(NodeId(u), NodeId(v), TimeIndex(0)).unwrap();
            }
            let Some(&root) = g.active_nodes().first() else {
                continue;
            };
            let mut state = ResumableBfs::start(&g, root).unwrap();
            for batch in &batches[1..] {
                let t = g.push_timestamp(g.num_timestamps() as i64).unwrap();
                for &(u, v) in batch {
                    g.add_edge(NodeId(u), NodeId(v), t).unwrap();
                }
                state.extend_snapshot(&g, &touched_at(&g, t)).unwrap();
                let scratch = bfs(&g, root).unwrap();
                assert_eq!(
                    state.to_distance_map().as_flat_slice(),
                    scratch.as_flat_slice(),
                    "seed {seed}, snapshot {t:?}"
                );
            }
        }
    }

    #[test]
    fn foremost_extension_matches_from_scratch_sweep_on_random_growth() {
        for seed in [5u64, 21, 0xACE] {
            let n = 20;
            let batches = random_growth_trace(seed, n, 5);
            let mut g = AdjacencyListGraph::directed_with_unit_times(n, 1);
            for &(u, v) in &batches[0] {
                g.add_edge(NodeId(u), NodeId(v), TimeIndex(0)).unwrap();
            }
            let Some(&root) = g.active_nodes().first() else {
                continue;
            };
            let mut state = ResumableForemost::start(&g, root);
            for batch in &batches[1..] {
                let t = g.push_timestamp(g.num_timestamps() as i64).unwrap();
                for &(u, v) in batch {
                    g.add_edge(NodeId(u), NodeId(v), t).unwrap();
                }
                state.extend_snapshot(&g, &touched_at(&g, t)).unwrap();
                let scratch = earliest_arrival(&g, root);
                assert_eq!(
                    state.to_result().arrivals(),
                    scratch.arrivals(),
                    "seed {seed}, snapshot {t:?}"
                );
            }
        }
    }

    #[test]
    fn extension_covers_multi_hop_within_the_new_snapshot() {
        // Appended snapshot holds a chain 0 → 1 → 2 → 3; only node 0 has a
        // past. All of it must be discovered by in-snapshot relaxation.
        let mut g = AdjacencyListGraph::directed_with_unit_times(4, 1);
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
        let root = TemporalNode::from_raw(0, 0);
        let mut state = ResumableBfs::start(&g, root).unwrap();
        let t = g.push_timestamp(1).unwrap();
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            g.add_edge(NodeId(u), NodeId(v), t).unwrap();
        }
        state.extend_snapshot(&g, &touched_at(&g, t)).unwrap();
        let map = state.to_distance_map();
        // (0, t1) via causal hop = 1, then static hops 2, 3, 4.
        assert_eq!(map.distance(TemporalNode::from_raw(0, 1)), Some(1));
        assert_eq!(map.distance(TemporalNode::from_raw(3, 1)), Some(4));
        assert_eq!(map.as_flat_slice(), bfs(&g, root).unwrap().as_flat_slice());
    }

    #[test]
    fn extension_prefers_the_cheaper_of_causal_and_static_entries() {
        // Node 2's causal entry would cost best+1 = 4, but a static hop from
        // node 0 (causal entry 1) inside the new snapshot costs 2.
        let mut g = AdjacencyListGraph::directed_with_unit_times(3, 2);
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), TimeIndex(1)).unwrap();
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(1)).unwrap();
        let root = TemporalNode::from_raw(0, 0);
        let mut state = ResumableBfs::start(&g, root).unwrap();
        let t = g.push_timestamp(2).unwrap();
        g.add_edge(NodeId(0), NodeId(2), t).unwrap();
        state.extend_snapshot(&g, &touched_at(&g, t)).unwrap();
        assert_eq!(
            state.to_distance_map().as_flat_slice(),
            bfs(&g, root).unwrap().as_flat_slice()
        );
    }

    #[test]
    fn grow_nodes_relayouts_state_and_matches_scratch() {
        let mut g = paper_figure1();
        let root = TemporalNode::from_raw(0, 0);
        let mut state = ResumableBfs::start(&g, root).unwrap();
        let mut foremost = ResumableForemost::start(&g, root);
        g.grow_nodes(6);
        state.grow_nodes(6);
        foremost.grow_nodes(6);
        let t = g.push_timestamp(100).unwrap();
        g.add_edge(NodeId(2), NodeId(5), t).unwrap();
        g.add_edge(NodeId(5), NodeId(4), t).unwrap();
        let touched = touched_at(&g, t);
        state.extend_snapshot(&g, &touched).unwrap();
        foremost.extend_snapshot(&g, &touched).unwrap();
        assert_eq!(
            state.to_distance_map().as_flat_slice(),
            bfs(&g, root).unwrap().as_flat_slice()
        );
        assert_eq!(
            foremost.to_result().arrivals(),
            earliest_arrival(&g, root).arrivals()
        );
        // The brand-new node is reached only through the appended snapshot.
        assert_eq!(
            state.best_distance(NodeId(5)),
            state.distance(TemporalNode::new(NodeId(5), t))
        );
    }

    #[test]
    fn extension_without_a_new_snapshot_is_rejected() {
        let g = paper_figure1();
        let mut state = ResumableBfs::start(&g, TemporalNode::from_raw(0, 0)).unwrap();
        // All three snapshots are already covered.
        assert!(matches!(
            state.extend_snapshot(&g, &[]),
            Err(GraphError::TimeOutOfRange { .. })
        ));
        let mut foremost = ResumableForemost::start(&g, TemporalNode::from_raw(0, 0));
        assert!(matches!(
            foremost.extend_snapshot(&g, &[]),
            Err(GraphError::TimeOutOfRange { .. })
        ));
    }

    #[test]
    fn ungrown_state_rejects_a_grown_graph() {
        let mut g = paper_figure1();
        let mut state = ResumableBfs::start(&g, TemporalNode::from_raw(0, 0)).unwrap();
        g.grow_nodes(10);
        let t = g.push_timestamp(50).unwrap();
        g.add_edge(NodeId(0), NodeId(9), t).unwrap();
        assert!(matches!(
            state.extend_snapshot(&g, &touched_at(&g, t)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn from_map_round_trips_through_to_distance_map() {
        let g = paper_figure1();
        for &root in &g.active_nodes() {
            let map = bfs(&g, root).unwrap();
            let state = ResumableBfs::from_map(&map);
            assert_eq!(state.to_distance_map().as_flat_slice(), map.as_flat_slice());
            assert_eq!(state.root(), root);
            assert_eq!(state.covered_timestamps(), g.num_timestamps());
        }
    }

    #[test]
    fn shared_extension_matches_from_scratch_on_random_growth() {
        use crate::bfs::multi_source_shared;
        for seed in [7u64, 41, 0xC0FFEE] {
            let n = 22;
            let batches = random_growth_trace(seed, n, 6);
            let mut g = AdjacencyListGraph::directed_with_unit_times(n, 1);
            for &(u, v) in &batches[0] {
                g.add_edge(NodeId(u), NodeId(v), TimeIndex(0)).unwrap();
            }
            let active = g.active_nodes();
            if active.len() < 2 {
                continue;
            }
            // Deliberately include a duplicate source: attribution must still
            // pick the smallest source *index*, and the extension must
            // reproduce that tie-break exactly.
            let sources = vec![active[0], active[1], active[0]];
            let mut state = ResumableShared::start(&g, &sources).unwrap();
            for batch in &batches[1..] {
                let t = g.push_timestamp(g.num_timestamps() as i64).unwrap();
                for &(u, v) in batch {
                    g.add_edge(NodeId(u), NodeId(v), t).unwrap();
                }
                state.extend_snapshot(&g, &touched_at(&g, t)).unwrap();
                let scratch = multi_source_shared(&g, &sources).unwrap();
                let extended = state.to_map();
                assert_eq!(
                    extended.as_flat_slice(),
                    scratch.as_flat_slice(),
                    "distances diverged: seed {seed}, snapshot {t:?}"
                );
                assert_eq!(
                    extended.reached_with_sources(),
                    scratch.reached_with_sources(),
                    "attribution diverged: seed {seed}, snapshot {t:?}"
                );
            }
        }
    }

    #[test]
    fn shared_grow_nodes_relayouts_state_and_matches_scratch() {
        use crate::bfs::multi_source_shared;
        let mut g = paper_figure1();
        let sources = vec![TemporalNode::from_raw(0, 0), TemporalNode::from_raw(1, 0)];
        let mut state = ResumableShared::start(&g, &sources).unwrap();
        g.grow_nodes(6);
        state.grow_nodes(6);
        let t = g.push_timestamp(100).unwrap();
        g.add_edge(NodeId(2), NodeId(5), t).unwrap();
        g.add_edge(NodeId(5), NodeId(4), t).unwrap();
        state.extend_snapshot(&g, &touched_at(&g, t)).unwrap();
        let scratch = multi_source_shared(&g, &sources).unwrap();
        assert_eq!(
            state.to_map().reached_with_sources(),
            scratch.reached_with_sources()
        );
        assert_eq!(state.sources(), &sources[..]);
    }

    #[test]
    fn parent_links_survive_extension_with_exact_distances_and_valid_edges() {
        use crate::bfs::bfs_with_parents;
        for seed in [11u64, 77, 0xFEED] {
            let n = 18;
            let batches = random_growth_trace(seed, n, 5);
            let mut g = AdjacencyListGraph::directed_with_unit_times(n, 1);
            for &(u, v) in &batches[0] {
                g.add_edge(NodeId(u), NodeId(v), TimeIndex(0)).unwrap();
            }
            let Some(&root) = g.active_nodes().first() else {
                continue;
            };
            let mut state = ResumableBfs::from_map(&bfs_with_parents(&g, root).unwrap());
            for batch in &batches[1..] {
                let t = g.push_timestamp(g.num_timestamps() as i64).unwrap();
                for &(u, v) in batch {
                    g.add_edge(NodeId(u), NodeId(v), t).unwrap();
                }
                state.extend_snapshot(&g, &touched_at(&g, t)).unwrap();
                let extended = state.to_distance_map();
                let scratch = bfs_with_parents(&g, root).unwrap();
                // Distances are pinned exactly; parent pointers are only
                // required to be *valid* (parent one hop closer, edge exists
                // in the effective direction), because first-discoverer order
                // differs between extension and from-scratch runs.
                assert_eq!(
                    extended.as_flat_slice(),
                    scratch.as_flat_slice(),
                    "seed {seed}, snapshot {t:?}"
                );
                assert!(extended.has_parents());
                for (tn, d) in extended.reached() {
                    if tn == root {
                        continue;
                    }
                    let p = extended.parent(tn).unwrap_or_else(|| {
                        panic!("reached non-root {tn:?} lacks a parent (seed {seed})")
                    });
                    assert_eq!(
                        extended.distance(p),
                        Some(d - 1),
                        "parent {p:?} of {tn:?} not one hop closer (seed {seed})"
                    );
                    let mut is_neighbor = false;
                    g.for_each_forward_neighbor(p, &mut |w| is_neighbor |= w == tn);
                    assert!(
                        is_neighbor,
                        "parent edge {p:?} -> {tn:?} does not exist (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn stable_core_fringe_is_empty_across_appends() {
        use crate::bfs::backward_bfs;
        let mut g = paper_figure1();
        let root = TemporalNode::from_raw(2, 1);
        let map = backward_bfs(&g, root).unwrap();
        let mut core = StableCoreResettle::from_reached_times(
            g.num_nodes(),
            g.num_timestamps(),
            map.reached().into_iter().map(|(tn, _)| tn),
        );
        for step in 0..3 {
            let t = g.push_timestamp(100 + step).unwrap();
            g.add_edge(NodeId(0), NodeId(2), t).unwrap();
            let fringe = core.extend_snapshot(&g, &touched_at(&g, t)).unwrap();
            assert!(fringe.is_empty(), "append produced an unstable fringe");
            assert_eq!(core.covered_timestamps(), t.index() + 1);
            // The reversed result really is append-invariant.
            assert_eq!(
                backward_bfs(&g, root).unwrap().reached(),
                map.reached(),
                "snapshot {t:?}"
            );
        }
    }

    #[test]
    fn stable_core_detects_an_out_of_prefix_value() {
        // Contrived violation of the append-only contract: a retained value
        // sitting *at* the to-be-appended snapshot. The verifier must report
        // the node as unstable fringe and refuse to advance coverage.
        let mut g = paper_figure1();
        let bogus = TemporalNode::new(NodeId(1), TimeIndex::from_index(g.num_timestamps()));
        let mut core = StableCoreResettle::from_reached_times(
            g.num_nodes(),
            g.num_timestamps(),
            [TemporalNode::from_raw(0, 0), bogus],
        );
        let t = g.push_timestamp(100).unwrap();
        g.add_edge(NodeId(1), NodeId(2), t).unwrap();
        let covered_before = core.covered_timestamps();
        let fringe = core.extend_snapshot(&g, &touched_at(&g, t)).unwrap();
        assert_eq!(fringe, vec![NodeId(1)]);
        assert_eq!(core.covered_timestamps(), covered_before);
    }

    #[test]
    fn stable_core_rejects_graphs_it_is_not_dimensioned_for() {
        let mut g = paper_figure1();
        let mut core =
            StableCoreResettle::from_reached_times(g.num_nodes(), g.num_timestamps(), []);
        // No appended snapshot yet: out of range.
        assert!(matches!(
            core.extend_snapshot(&g, &[]),
            Err(GraphError::TimeOutOfRange { .. })
        ));
        g.grow_nodes(10);
        let t = g.push_timestamp(50).unwrap();
        g.add_edge(NodeId(0), NodeId(9), t).unwrap();
        assert!(matches!(
            core.extend_snapshot(&g, &touched_at(&g, t)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        core.grow_nodes(10);
        assert!(core
            .extend_snapshot(&g, &touched_at(&g, t))
            .unwrap()
            .is_empty());
    }
}
