//! Resumable traversal state for *incremental re-search* over a growing
//! evolving graph.
//!
//! The evolving-graph model is append-only in time: a new snapshot's label is
//! strictly later than every existing one, so every new causal edge points
//! *into* the new snapshot and every new static edge lives *inside* it. A
//! forward traversal therefore only ever **gains** reachability as the graph
//! grows — the distances (and arrivals) of previously covered temporal nodes
//! are final the moment they are computed. This module captures exactly the
//! state needed to exploit that:
//!
//! * [`ResumableBfs`] — the flat distance table of Algorithm 1 plus a
//!   per-node *frontier snapshot* (`node_best`: the minimum distance at which
//!   each node was ever reached). Appending snapshot `t_new` seeds each node
//!   active at `t_new` with `node_best + 1` (its cheapest causal entry) and
//!   relaxes static edges inside `t_new` with a bucket BFS — work
//!   proportional to the new snapshot, not the history.
//! * [`ResumableForemost`] — the earliest-arrival table of the foremost
//!   sweep. Appending `t_new` can only create arrivals *at* `t_new`, found by
//!   one static BFS inside the new snapshot seeded from already-reached
//!   nodes.
//!
//! Both are pinned to their from-scratch engines by the unit tests below and
//! by the workspace's `live_stream_differential` suite; the
//! `incremental_vs_recompute` bench asserts the delta-proportional work claim
//! with [`crate::instrument::CountingView`] counters.
//!
//! Backward or time-reversed traversals do **not** admit this extension (a
//! new snapshot changes which temporal nodes can reach a *later* source), so
//! query layers fall back to recomputation for those shapes — see the
//! cache-invalidation matrix in the workspace ROADMAP.

use std::collections::BTreeMap;

use crate::bfs::bfs;
use crate::distance::{DistanceMap, UNREACHED};
use crate::error::{GraphError, Result};
use crate::foremost::{earliest_arrival, ForemostResult};
use crate::graph::EvolvingGraph;
use crate::ids::{NodeId, TemporalNode, TimeIndex};

/// Resumable state of a forward hop-distance BFS (Algorithm 1).
///
/// The state covers a prefix of the graph's snapshots. [`ResumableBfs::extend_snapshot`]
/// advances the covered prefix by one snapshot in time proportional to that
/// snapshot's contents; [`ResumableBfs::to_distance_map`] materialises the
/// ordinary [`DistanceMap`] a from-scratch [`bfs`] over the covered prefix
/// would produce.
#[derive(Clone, Debug)]
pub struct ResumableBfs {
    root: TemporalNode,
    num_nodes: usize,
    /// Snapshots covered so far; `dist` has `num_nodes * num_timestamps`
    /// entries in time-major layout.
    num_timestamps: usize,
    dist: Vec<u32>,
    /// The frontier snapshot: `node_best[v]` = minimum distance at which `v`
    /// was reached at any covered snapshot (`UNREACHED` if never).
    node_best: Vec<u32>,
}

impl ResumableBfs {
    /// Runs a full forward BFS from `root` and captures resumable state.
    ///
    /// # Errors
    /// The same root-validation errors as [`bfs`].
    pub fn start<G: EvolvingGraph>(graph: &G, root: TemporalNode) -> Result<Self> {
        Ok(Self::from_map(&bfs(graph, root)?))
    }

    /// Captures resumable state from an already-computed forward distance
    /// map (e.g. one produced through a query layer). The map must be a
    /// *forward* full- or suffix-window result in the coordinates of the
    /// graph that will later be extended; backward or time-reversed maps
    /// cannot be resumed (see the module docs).
    pub fn from_map(map: &DistanceMap) -> Self {
        let num_nodes = map.num_nodes();
        let num_timestamps = map.num_timestamps();
        let dist = map.as_flat_slice().to_vec();
        let mut node_best = vec![UNREACHED; num_nodes];
        for (i, &d) in dist.iter().enumerate() {
            let v = i % num_nodes;
            if d < node_best[v] {
                node_best[v] = d;
            }
        }
        ResumableBfs {
            root: map.root(),
            num_nodes,
            num_timestamps,
            dist,
            node_best,
        }
    }

    /// The root the traversal started from.
    pub fn root(&self) -> TemporalNode {
        self.root
    }

    /// Number of snapshots covered so far.
    pub fn covered_timestamps(&self) -> usize {
        self.num_timestamps
    }

    /// Size of the node universe the state is laid out for.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The frontier snapshot: minimum distance at which `v` was ever
    /// reached, or `None`.
    pub fn best_distance(&self, v: NodeId) -> Option<u32> {
        match self.node_best.get(v.index()) {
            Some(&d) if d != UNREACHED => Some(d),
            _ => None,
        }
    }

    /// Distance of a covered temporal node, or `None` if unreached (or not
    /// yet covered).
    pub fn distance(&self, tn: TemporalNode) -> Option<u32> {
        if tn.node.index() >= self.num_nodes || tn.time.index() >= self.num_timestamps {
            return None;
        }
        match self.dist[tn.flat_index(self.num_nodes)] {
            UNREACHED => None,
            d => Some(d),
        }
    }

    /// Re-lays the state out for a grown node universe. New nodes start
    /// unreached everywhere. Shrinking is not supported (no-op).
    pub fn grow_nodes(&mut self, num_nodes: usize) {
        if num_nodes <= self.num_nodes {
            return;
        }
        let mut dist = vec![UNREACHED; num_nodes * self.num_timestamps];
        for t in 0..self.num_timestamps {
            let src = &self.dist[t * self.num_nodes..(t + 1) * self.num_nodes];
            dist[t * num_nodes..t * num_nodes + self.num_nodes].copy_from_slice(src);
        }
        self.dist = dist;
        self.node_best.resize(num_nodes, UNREACHED);
        self.num_nodes = num_nodes;
    }

    /// Extends coverage by one snapshot — the next uncovered index,
    /// `self.covered_timestamps()` — doing work proportional to that
    /// snapshot's contents.
    ///
    /// `touched` must be exactly the nodes active at the new snapshot (the
    /// end points of its static edges); the live-graph layer records this
    /// per seal. Because all causal edges into the new snapshot come from
    /// the same node at an earlier active time, each touched node's cheapest
    /// entry costs `node_best + 1`; static edges inside the snapshot then
    /// relax those seeds with a bucket (Dial) BFS.
    ///
    /// # Errors
    /// [`GraphError::TimeOutOfRange`] if the graph does not contain the next
    /// snapshot yet, [`GraphError::NodeOutOfRange`] if the graph's node
    /// universe outgrew the state (call [`ResumableBfs::grow_nodes`] first).
    pub fn extend_snapshot<G: EvolvingGraph>(
        &mut self,
        graph: &G,
        touched: &[NodeId],
    ) -> Result<()> {
        let t_new = TimeIndex::from_index(self.num_timestamps);
        if t_new.index() >= graph.num_timestamps() {
            return Err(GraphError::TimeOutOfRange {
                time: t_new,
                num_timestamps: graph.num_timestamps(),
            });
        }
        if graph.num_nodes() > self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: NodeId::from_index(self.num_nodes),
                num_nodes: graph.num_nodes(),
            });
        }
        debug_assert!(
            touched.iter().all(|&v| graph.is_active(v, t_new)),
            "touched list must contain only nodes active at the new snapshot"
        );

        // Seed every touched node with its cheapest causal entry, then relax
        // static edges inside the new snapshot in increasing-distance order.
        let mut buckets: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
        for &v in touched {
            let best = self.node_best[v.index()];
            if best != UNREACHED {
                buckets.entry(best + 1).or_default().push(v);
            }
        }
        let mut new_row = vec![UNREACHED; self.num_nodes];
        while let Some((&d, _)) = buckets.iter().next() {
            let nodes = buckets.remove(&d).expect("key taken from the map");
            for v in nodes {
                if new_row[v.index()] <= d {
                    continue; // settled earlier at an equal or smaller distance
                }
                new_row[v.index()] = d;
                graph.for_each_static_out(v, t_new, &mut |w| {
                    if new_row[w.index()] > d + 1 {
                        buckets.entry(d + 1).or_default().push(w);
                    }
                });
            }
        }

        for (v, &d) in new_row.iter().enumerate() {
            if d < self.node_best[v] {
                self.node_best[v] = d;
            }
        }
        self.dist.extend_from_slice(&new_row);
        self.num_timestamps += 1;
        Ok(())
    }

    /// Materialises the covered prefix as an ordinary [`DistanceMap`] —
    /// byte-for-byte what a from-scratch [`bfs`] over that prefix produces.
    pub fn to_distance_map(&self) -> DistanceMap {
        let reached: Vec<(TemporalNode, u32)> = self
            .dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != UNREACHED)
            .map(|(i, &d)| (TemporalNode::from_flat_index(i, self.num_nodes), d))
            .collect();
        DistanceMap::from_reached(self.num_nodes, self.num_timestamps, self.root, &reached)
    }
}

/// Resumable state of a forward earliest-arrival ("foremost") sweep.
///
/// Mirrors [`ResumableBfs`] for [`earliest_arrival`]: arrivals of
/// already-reached nodes are final (a new snapshot is strictly later), so
/// extending by one snapshot is a single static BFS inside it, seeded from
/// the reached nodes that are active there.
#[derive(Clone, Debug)]
pub struct ResumableForemost {
    root: TemporalNode,
    num_timestamps: usize,
    arrival: Vec<Option<TimeIndex>>,
}

impl ResumableForemost {
    /// Runs a full sweep from `root` and captures resumable state. Like
    /// [`earliest_arrival`], inactive or out-of-range roots are tolerated
    /// (they reach nothing); query layers validate separately.
    pub fn start<G: EvolvingGraph>(graph: &G, root: TemporalNode) -> Self {
        Self::from_result(&earliest_arrival(graph, root), graph.num_timestamps())
    }

    /// Captures resumable state from an already-computed *forward* arrival
    /// table covering `num_timestamps` snapshots of the graph that will
    /// later be extended. Reversed (latest-departure) tables cannot be
    /// resumed.
    pub fn from_result(result: &ForemostResult, num_timestamps: usize) -> Self {
        ResumableForemost {
            root: result.root(),
            num_timestamps,
            arrival: result.arrivals().to_vec(),
        }
    }

    /// The root of the sweep.
    pub fn root(&self) -> TemporalNode {
        self.root
    }

    /// Number of snapshots covered so far.
    pub fn covered_timestamps(&self) -> usize {
        self.num_timestamps
    }

    /// Size of the node universe the state is laid out for.
    pub fn num_nodes(&self) -> usize {
        self.arrival.len()
    }

    /// The covered arrival of `v`, if reached.
    pub fn arrival(&self, v: NodeId) -> Option<TimeIndex> {
        self.arrival.get(v.index()).copied().flatten()
    }

    /// Extends the state for a grown node universe; new nodes start
    /// unreached.
    pub fn grow_nodes(&mut self, num_nodes: usize) {
        if num_nodes > self.arrival.len() {
            self.arrival.resize(num_nodes, None);
        }
    }

    /// Extends coverage by one snapshot (the next uncovered index). New
    /// arrivals can only happen *at* the new snapshot: one static BFS inside
    /// it, seeded from the already-reached `touched` nodes, finds them all.
    /// `touched` must be exactly the nodes active at the new snapshot.
    ///
    /// # Errors
    /// [`GraphError::TimeOutOfRange`] / [`GraphError::NodeOutOfRange`] as
    /// for [`ResumableBfs::extend_snapshot`].
    pub fn extend_snapshot<G: EvolvingGraph>(
        &mut self,
        graph: &G,
        touched: &[NodeId],
    ) -> Result<()> {
        let t_new = TimeIndex::from_index(self.num_timestamps);
        if t_new.index() >= graph.num_timestamps() {
            return Err(GraphError::TimeOutOfRange {
                time: t_new,
                num_timestamps: graph.num_timestamps(),
            });
        }
        if graph.num_nodes() > self.arrival.len() {
            return Err(GraphError::NodeOutOfRange {
                node: NodeId::from_index(self.arrival.len()),
                num_nodes: graph.num_nodes(),
            });
        }
        debug_assert!(
            touched.iter().all(|&v| graph.is_active(v, t_new)),
            "touched list must contain only nodes active at the new snapshot"
        );

        let mut frontier: Vec<NodeId> = touched
            .iter()
            .copied()
            .filter(|&v| self.arrival[v.index()].is_some())
            .collect();
        while let Some(u) = frontier.pop() {
            graph.for_each_static_out(u, t_new, &mut |w| {
                let slot = &mut self.arrival[w.index()];
                if slot.is_none() {
                    *slot = Some(t_new);
                    frontier.push(w);
                }
            });
        }
        self.num_timestamps += 1;
        Ok(())
    }

    /// Materialises the covered prefix as an ordinary [`ForemostResult`].
    pub fn to_result(&self) -> ForemostResult {
        ForemostResult::from_arrivals(self.root, self.arrival.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyListGraph;
    use crate::examples::paper_figure1;

    /// A deterministic xorshift stream for the randomized pinning tests.
    struct Xs(u64);
    impl Xs {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
    }

    fn touched_at(g: &AdjacencyListGraph, t: TimeIndex) -> Vec<NodeId> {
        g.active_at(t).into_iter().map(|tn| tn.node).collect()
    }

    fn random_growth_trace(seed: u64, n: usize, steps: usize) -> Vec<Vec<(u32, u32)>> {
        let mut rng = Xs(seed | 1);
        (0..steps)
            .map(|_| {
                let edges = 1 + (rng.next() % (2 * n as u64)) as usize;
                (0..edges)
                    .filter_map(|_| {
                        let u = (rng.next() % n as u64) as u32;
                        let v = (rng.next() % n as u64) as u32;
                        (u != v).then_some((u, v))
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn extension_matches_from_scratch_bfs_on_random_growth() {
        for seed in [3u64, 17, 99, 0xBEEF] {
            let n = 24;
            let batches = random_growth_trace(seed, n, 6);
            let mut g = AdjacencyListGraph::directed_with_unit_times(n, 1);
            for &(u, v) in &batches[0] {
                g.add_edge(NodeId(u), NodeId(v), TimeIndex(0)).unwrap();
            }
            let Some(&root) = g.active_nodes().first() else {
                continue;
            };
            let mut state = ResumableBfs::start(&g, root).unwrap();
            for batch in &batches[1..] {
                let t = g.push_timestamp(g.num_timestamps() as i64).unwrap();
                for &(u, v) in batch {
                    g.add_edge(NodeId(u), NodeId(v), t).unwrap();
                }
                state.extend_snapshot(&g, &touched_at(&g, t)).unwrap();
                let scratch = bfs(&g, root).unwrap();
                assert_eq!(
                    state.to_distance_map().as_flat_slice(),
                    scratch.as_flat_slice(),
                    "seed {seed}, snapshot {t:?}"
                );
            }
        }
    }

    #[test]
    fn foremost_extension_matches_from_scratch_sweep_on_random_growth() {
        for seed in [5u64, 21, 0xACE] {
            let n = 20;
            let batches = random_growth_trace(seed, n, 5);
            let mut g = AdjacencyListGraph::directed_with_unit_times(n, 1);
            for &(u, v) in &batches[0] {
                g.add_edge(NodeId(u), NodeId(v), TimeIndex(0)).unwrap();
            }
            let Some(&root) = g.active_nodes().first() else {
                continue;
            };
            let mut state = ResumableForemost::start(&g, root);
            for batch in &batches[1..] {
                let t = g.push_timestamp(g.num_timestamps() as i64).unwrap();
                for &(u, v) in batch {
                    g.add_edge(NodeId(u), NodeId(v), t).unwrap();
                }
                state.extend_snapshot(&g, &touched_at(&g, t)).unwrap();
                let scratch = earliest_arrival(&g, root);
                assert_eq!(
                    state.to_result().arrivals(),
                    scratch.arrivals(),
                    "seed {seed}, snapshot {t:?}"
                );
            }
        }
    }

    #[test]
    fn extension_covers_multi_hop_within_the_new_snapshot() {
        // Appended snapshot holds a chain 0 → 1 → 2 → 3; only node 0 has a
        // past. All of it must be discovered by in-snapshot relaxation.
        let mut g = AdjacencyListGraph::directed_with_unit_times(4, 1);
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
        let root = TemporalNode::from_raw(0, 0);
        let mut state = ResumableBfs::start(&g, root).unwrap();
        let t = g.push_timestamp(1).unwrap();
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            g.add_edge(NodeId(u), NodeId(v), t).unwrap();
        }
        state.extend_snapshot(&g, &touched_at(&g, t)).unwrap();
        let map = state.to_distance_map();
        // (0, t1) via causal hop = 1, then static hops 2, 3, 4.
        assert_eq!(map.distance(TemporalNode::from_raw(0, 1)), Some(1));
        assert_eq!(map.distance(TemporalNode::from_raw(3, 1)), Some(4));
        assert_eq!(map.as_flat_slice(), bfs(&g, root).unwrap().as_flat_slice());
    }

    #[test]
    fn extension_prefers_the_cheaper_of_causal_and_static_entries() {
        // Node 2's causal entry would cost best+1 = 4, but a static hop from
        // node 0 (causal entry 1) inside the new snapshot costs 2.
        let mut g = AdjacencyListGraph::directed_with_unit_times(3, 2);
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), TimeIndex(1)).unwrap();
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(1)).unwrap();
        let root = TemporalNode::from_raw(0, 0);
        let mut state = ResumableBfs::start(&g, root).unwrap();
        let t = g.push_timestamp(2).unwrap();
        g.add_edge(NodeId(0), NodeId(2), t).unwrap();
        state.extend_snapshot(&g, &touched_at(&g, t)).unwrap();
        assert_eq!(
            state.to_distance_map().as_flat_slice(),
            bfs(&g, root).unwrap().as_flat_slice()
        );
    }

    #[test]
    fn grow_nodes_relayouts_state_and_matches_scratch() {
        let mut g = paper_figure1();
        let root = TemporalNode::from_raw(0, 0);
        let mut state = ResumableBfs::start(&g, root).unwrap();
        let mut foremost = ResumableForemost::start(&g, root);
        g.grow_nodes(6);
        state.grow_nodes(6);
        foremost.grow_nodes(6);
        let t = g.push_timestamp(100).unwrap();
        g.add_edge(NodeId(2), NodeId(5), t).unwrap();
        g.add_edge(NodeId(5), NodeId(4), t).unwrap();
        let touched = touched_at(&g, t);
        state.extend_snapshot(&g, &touched).unwrap();
        foremost.extend_snapshot(&g, &touched).unwrap();
        assert_eq!(
            state.to_distance_map().as_flat_slice(),
            bfs(&g, root).unwrap().as_flat_slice()
        );
        assert_eq!(
            foremost.to_result().arrivals(),
            earliest_arrival(&g, root).arrivals()
        );
        // The brand-new node is reached only through the appended snapshot.
        assert_eq!(
            state.best_distance(NodeId(5)),
            state.distance(TemporalNode::new(NodeId(5), t))
        );
    }

    #[test]
    fn extension_without_a_new_snapshot_is_rejected() {
        let g = paper_figure1();
        let mut state = ResumableBfs::start(&g, TemporalNode::from_raw(0, 0)).unwrap();
        // All three snapshots are already covered.
        assert!(matches!(
            state.extend_snapshot(&g, &[]),
            Err(GraphError::TimeOutOfRange { .. })
        ));
        let mut foremost = ResumableForemost::start(&g, TemporalNode::from_raw(0, 0));
        assert!(matches!(
            foremost.extend_snapshot(&g, &[]),
            Err(GraphError::TimeOutOfRange { .. })
        ));
    }

    #[test]
    fn ungrown_state_rejects_a_grown_graph() {
        let mut g = paper_figure1();
        let mut state = ResumableBfs::start(&g, TemporalNode::from_raw(0, 0)).unwrap();
        g.grow_nodes(10);
        let t = g.push_timestamp(50).unwrap();
        g.add_edge(NodeId(0), NodeId(9), t).unwrap();
        assert!(matches!(
            state.extend_snapshot(&g, &touched_at(&g, t)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn from_map_round_trips_through_to_distance_map() {
        let g = paper_figure1();
        for &root in &g.active_nodes() {
            let map = bfs(&g, root).unwrap();
            let state = ResumableBfs::from_map(&map);
            assert_eq!(state.to_distance_map().as_flat_slice(), map.as_flat_slice());
            assert_eq!(state.root(), root);
            assert_eq!(state.covered_timestamps(), g.num_timestamps());
        }
    }
}
