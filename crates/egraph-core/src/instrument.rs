//! [`CountingView`]: a transparent [`EvolvingGraph`] adaptor that counts how
//! much graph work a traversal performs.
//!
//! Wall-clock comparisons between engines are noisy, so the benchmark suite
//! compares *work counters* instead: the number of neighbor-enumeration
//! calls an engine issues and the number of neighbors those calls deliver.
//! Because every engine is generic over [`EvolvingGraph`], wrapping the
//! workload in a `CountingView` instruments any engine without touching it —
//! the provided trait methods (`for_each_forward_neighbor`, `is_active`, …)
//! route through the counted primitives.
//!
//! Counters are atomics so the view also instruments the frontier-parallel
//! engines, which since PR 5 genuinely run across the thread pool: each
//! worker's increments land in the shared counters, and the pool's
//! completion latch orders them before any [`CountingView::counters`] read
//! that follows the traversal. Counting costs one relaxed increment per
//! event — enough contention to perturb parallel *wall-clock* numbers, so
//! benches measure time on the bare graph and work on the counted view.
//! Note the view instruments the *provided* neighbor visitors: a layout's
//! own fast-path overrides (e.g. [`crate::csr::CsrAdjacency`]'s
//! slice-direct `for_each_forward_neighbor`) are bypassed under counting,
//! which is exactly what makes counters layout-independent.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::graph::EvolvingGraph;
use crate::ids::{NodeId, TimeIndex, Timestamp};

/// A snapshot of the work counters of a [`CountingView`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraversalCounters {
    /// Calls to `for_each_static_out` — one per (node, snapshot) expansion.
    pub static_out_calls: u64,
    /// Calls to `for_each_static_in` (backward traversals).
    pub static_in_calls: u64,
    /// Calls to `for_each_active_time` (activeness checks and causal-edge
    /// enumeration).
    pub active_time_calls: u64,
    /// Total neighbors / active times delivered across all calls — the edge
    /// work of the traversal.
    pub neighbors_delivered: u64,
}

impl TraversalCounters {
    /// Total work units: every enumeration call plus every delivered item.
    pub fn total(&self) -> u64 {
        self.static_out_calls
            + self.static_in_calls
            + self.active_time_calls
            + self.neighbors_delivered
    }

    /// Expansion calls only (node work, excluding delivered items).
    pub fn expansions(&self) -> u64 {
        self.static_out_calls + self.static_in_calls + self.active_time_calls
    }
}

/// Wraps an [`EvolvingGraph`] and counts every primitive enumeration the
/// traversal performs. See the [module docs](self) for the methodology.
#[derive(Debug)]
pub struct CountingView<'g, G> {
    inner: &'g G,
    static_out_calls: AtomicU64,
    static_in_calls: AtomicU64,
    active_time_calls: AtomicU64,
    neighbors_delivered: AtomicU64,
}

impl<'g, G: EvolvingGraph> CountingView<'g, G> {
    /// Wraps `inner` with all counters at zero.
    pub fn new(inner: &'g G) -> Self {
        CountingView {
            inner,
            static_out_calls: AtomicU64::new(0),
            static_in_calls: AtomicU64::new(0),
            active_time_calls: AtomicU64::new(0),
            neighbors_delivered: AtomicU64::new(0),
        }
    }

    /// The wrapped graph.
    pub fn inner(&self) -> &G {
        self.inner
    }

    /// A snapshot of the counters accumulated so far.
    pub fn counters(&self) -> TraversalCounters {
        TraversalCounters {
            static_out_calls: self.static_out_calls.load(Ordering::Relaxed),
            static_in_calls: self.static_in_calls.load(Ordering::Relaxed),
            active_time_calls: self.active_time_calls.load(Ordering::Relaxed),
            neighbors_delivered: self.neighbors_delivered.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero (e.g. between the warm-up and measured
    /// runs of a benchmark).
    pub fn reset(&self) {
        self.static_out_calls.store(0, Ordering::Relaxed);
        self.static_in_calls.store(0, Ordering::Relaxed);
        self.active_time_calls.store(0, Ordering::Relaxed);
        self.neighbors_delivered.store(0, Ordering::Relaxed);
    }
}

impl<G: EvolvingGraph> EvolvingGraph for CountingView<'_, G> {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn num_timestamps(&self) -> usize {
        self.inner.num_timestamps()
    }

    fn timestamp(&self, t: TimeIndex) -> Timestamp {
        self.inner.timestamp(t)
    }

    fn is_directed(&self) -> bool {
        self.inner.is_directed()
    }

    fn num_static_edges(&self) -> usize {
        self.inner.num_static_edges()
    }

    fn for_each_static_out(&self, v: NodeId, t: TimeIndex, f: &mut dyn FnMut(NodeId)) {
        self.static_out_calls.fetch_add(1, Ordering::Relaxed);
        self.inner.for_each_static_out(v, t, &mut |w| {
            self.neighbors_delivered.fetch_add(1, Ordering::Relaxed);
            f(w);
        });
    }

    fn for_each_static_in(&self, v: NodeId, t: TimeIndex, f: &mut dyn FnMut(NodeId)) {
        self.static_in_calls.fetch_add(1, Ordering::Relaxed);
        self.inner.for_each_static_in(v, t, &mut |w| {
            self.neighbors_delivered.fetch_add(1, Ordering::Relaxed);
            f(w);
        });
    }

    fn for_each_active_time(&self, v: NodeId, f: &mut dyn FnMut(TimeIndex)) {
        self.active_time_calls.fetch_add(1, Ordering::Relaxed);
        self.inner.for_each_active_time(v, &mut |t| {
            self.neighbors_delivered.fetch_add(1, Ordering::Relaxed);
            f(t);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use crate::examples::paper_figure1;
    use crate::foremost::earliest_arrival;
    use crate::ids::TemporalNode;

    #[test]
    fn counting_view_is_transparent_to_traversals() {
        let g = paper_figure1();
        let view = CountingView::new(&g);
        let root = TemporalNode::from_raw(0, 0);
        let direct = bfs(&g, root).unwrap();
        let counted = bfs(&view, root).unwrap();
        assert_eq!(direct.as_flat_slice(), counted.as_flat_slice());
        let c = view.counters();
        assert!(c.static_out_calls > 0);
        assert!(c.active_time_calls > 0);
        assert!(c.neighbors_delivered > 0);
        assert_eq!(c.total(), c.expansions() + c.neighbors_delivered);
    }

    #[test]
    fn reset_clears_every_counter() {
        let g = paper_figure1();
        let view = CountingView::new(&g);
        let _ = earliest_arrival(&view, TemporalNode::from_raw(0, 0));
        assert!(view.counters().total() > 0);
        view.reset();
        assert_eq!(view.counters(), TraversalCounters::default());
    }

    #[test]
    fn sweep_counts_less_than_hop_bfs_even_on_the_paper_example() {
        // The inequality the foremost_vs_hops bench pins at scale holds on
        // the 3-node example already: the sweep never enumerates causal
        // edges or re-checks activeness.
        let g = paper_figure1();
        let root = TemporalNode::from_raw(0, 0);
        let hop_view = CountingView::new(&g);
        let _ = bfs(&hop_view, root).unwrap();
        let sweep_view = CountingView::new(&g);
        let _ = earliest_arrival(&sweep_view, root);
        assert!(sweep_view.counters().total() < hop_view.counters().total());
    }
}
