//! Frontier-parallel BFS over evolving graphs (rayon).
//!
//! The paper runs Algorithm 1 on a single core; the algorithm is nonetheless
//! naturally level-synchronous, and each BFS level can expand its frontier in
//! parallel because discoveries within a level are independent (ties are
//! broken by an atomic compare-and-swap on the visited word, which is how
//! classical parallel BFS implementations operate). The result is bit-for-bit
//! identical to the serial traversal — distances are determined by the level
//! structure, not by discovery order — which the `parallel_determinism`
//! suite and the ABL-B ablation benchmark both check under several pool
//! sizes.
//!
//! ## Execution shape
//!
//! Each level the frontier is cut into contiguous cache-friendly chunks and
//! expanded across the rayon pool; every chunk appends its discoveries to a
//! **private next-frontier buffer** (no shared growth, no per-element
//! synchronization beyond the discovery CAS), and the buffers are spliced
//! into the next frontier once, in chunk order, with a single exact-capacity
//! reservation. Frontiers below [`default_parallel_threshold`] (or the
//! explicitly supplied threshold) expand serially — spawning pool work for a
//! handful of nodes costs more than it saves.
//!
//! Result materialisation is `O(reached)`: the per-level frontiers are kept
//! and replayed into the [`DistanceMap`] / [`MultiSourceMap`], instead of
//! scanning the full `O(nodes × timestamps)` atomic array (which dominated
//! the runtime for shallow searches of large universes).

use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::distance::{DistanceMap, MultiSourceMap, UNREACHED};
use crate::error::{GraphError, Result};
use crate::graph::EvolvingGraph;
use crate::ids::TemporalNode;

/// Default frontier size below which the expansion falls back to the serial
/// loop. Overridable per process via the `EGRAPH_PAR_THRESHOLD` environment
/// variable (read once) and per query via
/// [`par_bfs_with_threshold`] / the query builder's `parallel_threshold`
/// combinator. Re-tuned against the real pool in the `parallel_bfs` bench
/// (see `BENCH_parallel.json`): wide shallow frontiers gain nothing from
/// smaller values, and larger values forfeit parallelism on mid-size levels.
pub const PARALLEL_FRONTIER_THRESHOLD: usize = 256;

/// The process-wide default threshold: `EGRAPH_PAR_THRESHOLD` if set to a
/// parseable `usize`, else [`PARALLEL_FRONTIER_THRESHOLD`].
pub fn default_parallel_threshold() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("EGRAPH_PAR_THRESHOLD")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(PARALLEL_FRONTIER_THRESHOLD)
    })
}

/// Runs Algorithm 1 with parallel frontier expansion under the process-wide
/// default threshold. Results are identical to [`crate::bfs::bfs`].
pub fn par_bfs<G>(graph: &G, root: TemporalNode) -> Result<DistanceMap>
where
    G: EvolvingGraph + Sync,
{
    par_bfs_with_threshold(graph, root, default_parallel_threshold())
}

/// [`par_bfs`] with an explicit parallel-expansion threshold: levels with at
/// least `threshold` frontier nodes expand across the pool, smaller levels
/// serially. `0` forces every level parallel (useful for differential
/// testing); `usize::MAX` forces the whole search serial. The threshold
/// cannot change the answer, only the execution profile.
pub fn par_bfs_with_threshold<G>(
    graph: &G,
    root: TemporalNode,
    threshold: usize,
) -> Result<DistanceMap>
where
    G: EvolvingGraph + Sync,
{
    crate::bfs::check_root(graph, root)?;

    let num_nodes = graph.num_nodes();
    let size = num_nodes * graph.num_timestamps();

    // Shared visited/distance array. UNREACHED means "not yet discovered".
    let dist: Vec<AtomicU32> = (0..size).map(|_| AtomicU32::new(UNREACHED)).collect();
    dist[root.flat_index(num_nodes)].store(0, Ordering::Relaxed);

    // `levels[k]` collects the temporal nodes discovered at distance `k`; it
    // both feeds the next expansion and is replayed into the DistanceMap at
    // the end, so materialisation touches exactly the reached set.
    let mut levels: Vec<Vec<TemporalNode>> = vec![vec![root]];
    let mut level: u32 = 1;

    while let Some(frontier) = levels.last().filter(|f| !f.is_empty()) {
        let next = expand_level(frontier, threshold, |tn, acc| {
            expand(graph, tn, level, num_nodes, &dist, acc)
        });
        levels.push(next);
        level += 1;
    }

    // O(reached) materialisation from the retained per-level frontiers.
    let mut map = DistanceMap::new(num_nodes, graph.num_timestamps(), root, false);
    for (k, frontier) in levels.iter().enumerate().skip(1) {
        for &tn in frontier {
            map.set_distance_unchecked(tn, k as u32);
        }
    }
    Ok(map)
}

/// Expands one level: chunked across the pool when the frontier is at least
/// `threshold` wide, serial below. Each chunk folds into its own buffer; the
/// buffers are spliced once, in chunk order.
fn expand_level<F>(frontier: &[TemporalNode], threshold: usize, expand_one: F) -> Vec<TemporalNode>
where
    F: Fn(TemporalNode, &mut Vec<TemporalNode>) + Sync,
{
    if frontier.len() >= threshold {
        let buffers: Vec<Vec<TemporalNode>> = frontier
            .par_iter()
            .fold(Vec::new, |mut acc, &tn| {
                expand_one(tn, &mut acc);
                acc
            })
            .collect();
        let mut next = Vec::with_capacity(buffers.iter().map(Vec::len).sum());
        for buffer in buffers {
            next.extend(buffer);
        }
        next
    } else {
        let mut next = Vec::new();
        for &tn in frontier {
            expand_one(tn, &mut next);
        }
        next
    }
}

#[inline]
fn expand<G: EvolvingGraph>(
    graph: &G,
    tn: TemporalNode,
    level: u32,
    num_nodes: usize,
    dist: &[AtomicU32],
    acc: &mut Vec<TemporalNode>,
) {
    graph.for_each_forward_neighbor(tn, &mut |nbr| {
        let slot = &dist[nbr.flat_index(num_nodes)];
        // First writer wins; everybody else sees the CAS fail and moves on.
        if slot
            .compare_exchange(UNREACHED, level, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            acc.push(nbr);
        }
    });
}

/// Frontier-parallel twin of [`crate::bfs::multi_source_shared`]: one shared
/// frontier seeded with every source, levels expanded across the rayon pool
/// under the process-wide default threshold.
///
/// Claims are packed `(distance << 32) | source_index` keys resolved with an
/// atomic `fetch_min`, so the nearest-source distance *and* the
/// smallest-index tie-break are schedule-independent: the result is
/// bit-for-bit identical to the serial engine no matter how the pool
/// interleaves, which the workspace's multi-source oracle suite checks.
pub fn par_multi_source_shared<G>(graph: &G, sources: &[TemporalNode]) -> Result<MultiSourceMap>
where
    G: EvolvingGraph + Sync,
{
    par_multi_source_shared_with_threshold(graph, sources, default_parallel_threshold())
}

/// [`par_multi_source_shared`] with an explicit parallel-expansion
/// threshold (same contract as [`par_bfs_with_threshold`]).
pub fn par_multi_source_shared_with_threshold<G>(
    graph: &G,
    sources: &[TemporalNode],
    threshold: usize,
) -> Result<MultiSourceMap>
where
    G: EvolvingGraph + Sync,
{
    if sources.is_empty() {
        return Err(GraphError::NoSources);
    }
    for &s in sources {
        crate::bfs::check_root(graph, s)?;
    }
    let num_nodes = graph.num_nodes();
    let size = num_nodes * graph.num_timestamps();

    let key: Vec<AtomicU64> = (0..size).map(|_| AtomicU64::new(u64::MAX)).collect();
    let mut frontier: Vec<TemporalNode> = Vec::new();
    for (i, &s) in sources.iter().enumerate() {
        let prev = key[s.flat_index(num_nodes)].fetch_min(i as u64, Ordering::Relaxed);
        if prev == u64::MAX {
            frontier.push(s);
        }
    }

    // Every node enters `touched` exactly once (at its discovery level), so
    // the final materialisation reads exactly the reached slots instead of
    // scanning all `nodes × timestamps` keys.
    let mut touched: Vec<TemporalNode> = frontier.clone();
    let mut level: u32 = 1;
    while !frontier.is_empty() {
        let next = expand_level(&frontier, threshold, |tn, acc| {
            expand_shared(graph, tn, level, num_nodes, &key, acc)
        });
        touched.extend_from_slice(&next);
        frontier = next;
        level += 1;
    }

    let entries: Vec<(TemporalNode, u32, usize)> = touched
        .iter()
        .map(|&tn| {
            let packed = key[tn.flat_index(num_nodes)].load(Ordering::Relaxed);
            (tn, (packed >> 32) as u32, (packed & 0xFFFF_FFFF) as usize)
        })
        .collect();
    Ok(MultiSourceMap::from_entries(
        num_nodes,
        graph.num_timestamps(),
        sources.to_vec(),
        &entries,
    ))
}

#[inline]
fn expand_shared<G: EvolvingGraph>(
    graph: &G,
    tn: TemporalNode,
    level: u32,
    num_nodes: usize,
    key: &[AtomicU64],
    acc: &mut Vec<TemporalNode>,
) {
    // `tn`'s attribution settled when the previous level finished (the
    // level-synchronous barrier orders all claims before any expansion).
    let src = key[tn.flat_index(num_nodes)].load(Ordering::Relaxed) & 0xFFFF_FFFF;
    let claim = (u64::from(level) << 32) | src;
    graph.for_each_forward_neighbor(tn, &mut |nbr| {
        let prev = key[nbr.flat_index(num_nodes)].fetch_min(claim, Ordering::Relaxed);
        // Exactly one claimant observes "unreached" and enqueues; same-level
        // rivals only lower the source index.
        if prev == u64::MAX {
            acc.push(nbr);
        }
    });
}

/// Runs BFS from many roots in parallel (one serial BFS per root, roots
/// distributed over the rayon pool). This is the access pattern of the
/// citation-mining workload of Section V, where an influence set is wanted
/// for every author.
pub fn multi_source_bfs<G>(graph: &G, roots: &[TemporalNode]) -> Vec<Result<DistanceMap>>
where
    G: EvolvingGraph + Sync,
{
    roots
        .par_iter()
        .map(|&root| crate::bfs::bfs(graph, root))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyListGraph;
    use crate::bfs::bfs;
    use crate::error::GraphError;
    use crate::examples::paper_figure1;
    use crate::ids::{NodeId, TimeIndex};

    fn dense_random_graph(seed: u64) -> AdjacencyListGraph {
        let n = 400usize;
        let n_t = 4usize;
        let mut g = AdjacencyListGraph::directed_with_unit_times(n, n_t);
        let mut state = seed;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..6000 {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            let t = (next() % n_t as u64) as u32;
            if u != v {
                g.add_edge(NodeId(u), NodeId(v), TimeIndex(t)).unwrap();
            }
        }
        g
    }

    #[test]
    fn parallel_matches_serial_on_paper_example() {
        let g = paper_figure1();
        for &root in &g.active_nodes() {
            let serial = bfs(&g, root).unwrap();
            let parallel = par_bfs(&g, root).unwrap();
            assert_eq!(serial.as_flat_slice(), parallel.as_flat_slice());
        }
    }

    #[test]
    fn parallel_rejects_inactive_root() {
        let g = paper_figure1();
        assert!(matches!(
            par_bfs(&g, TemporalNode::from_raw(2, 0)).unwrap_err(),
            GraphError::InactiveRoot { .. }
        ));
    }

    #[test]
    fn parallel_matches_serial_on_a_dense_random_graph() {
        // Large enough to cross the default threshold.
        let g = dense_random_graph(0x2545F4914F6CDD1D);
        let root = g.active_nodes()[0];
        let serial = bfs(&g, root).unwrap();
        let parallel = par_bfs(&g, root).unwrap();
        assert_eq!(serial.num_reached(), parallel.num_reached());
        assert_eq!(serial.as_flat_slice(), parallel.as_flat_slice());
    }

    #[test]
    fn threshold_extremes_cannot_change_the_answer() {
        // 0 = every level parallel (even single-node frontiers), MAX =
        // everything serial; both must equal the default and the serial
        // engine, including auxiliary counters.
        let g = dense_random_graph(0xD1CE);
        let root = g.active_nodes()[0];
        let serial = bfs(&g, root).unwrap();
        for threshold in [0, 1, 7, usize::MAX] {
            let parallel = par_bfs_with_threshold(&g, root, threshold).unwrap();
            assert_eq!(
                serial.as_flat_slice(),
                parallel.as_flat_slice(),
                "threshold {threshold}"
            );
            assert_eq!(serial.num_reached(), parallel.num_reached());
            assert_eq!(serial.max_distance(), parallel.max_distance());
        }
    }

    #[test]
    fn touched_list_materialisation_counts_match_the_full_scan() {
        // The O(reached) materialisation must produce the same counters the
        // old full atomic scan produced — num_reached is derived per set
        // slot, so a double-counted or dropped frontier entry would show.
        let g = dense_random_graph(0xBEEF);
        for &root in g.active_nodes().iter().step_by(101) {
            let serial = bfs(&g, root).unwrap();
            let parallel = par_bfs_with_threshold(&g, root, 1).unwrap();
            assert_eq!(serial.num_reached(), parallel.num_reached(), "{root:?}");
            assert_eq!(serial.distance_histogram(), parallel.distance_histogram());
        }
    }

    #[test]
    fn shared_frontier_twins_agree_on_paper_example() {
        let g = paper_figure1();
        let sources = g.active_nodes();
        let serial = crate::bfs::multi_source_shared(&g, &sources).unwrap();
        let parallel = par_multi_source_shared(&g, &sources).unwrap();
        assert_eq!(serial.as_flat_slice(), parallel.as_flat_slice());
        for tn in g.active_nodes() {
            assert_eq!(
                serial.nearest_source_index(tn),
                parallel.nearest_source_index(tn),
                "attribution at {tn:?}"
            );
        }
    }

    #[test]
    fn shared_frontier_twins_agree_on_a_dense_random_graph() {
        // Wide frontiers cross the parallel threshold (forced to 1 so the
        // pool path runs even on small levels).
        let g = dense_random_graph(0x9E3779B97F4A7C15);
        let actives = g.active_nodes();
        let sources: Vec<TemporalNode> = actives.iter().copied().step_by(97).collect();
        let serial = crate::bfs::multi_source_shared(&g, &sources).unwrap();
        let parallel = par_multi_source_shared_with_threshold(&g, &sources, 1).unwrap();
        assert_eq!(serial.num_reached(), parallel.num_reached());
        assert_eq!(serial.as_flat_slice(), parallel.as_flat_slice());
        for &tn in &actives {
            assert_eq!(
                serial.nearest_source_index(tn),
                parallel.nearest_source_index(tn),
                "attribution at {tn:?}"
            );
        }
    }

    #[test]
    fn duplicate_sources_survive_the_touched_materialisation() {
        // A duplicated source is seeded once; its entry must carry the
        // smallest source index, and the duplicate must not inflate
        // num_reached.
        let g = paper_figure1();
        let s = g.active_nodes()[0];
        let serial = crate::bfs::multi_source_shared(&g, &[s, s]).unwrap();
        let parallel = par_multi_source_shared_with_threshold(&g, &[s, s], 1).unwrap();
        assert_eq!(serial.as_flat_slice(), parallel.as_flat_slice());
        assert_eq!(serial.num_reached(), parallel.num_reached());
        assert_eq!(parallel.nearest_source_index(s), Some(0));
    }

    #[test]
    fn par_shared_frontier_rejects_bad_inputs() {
        let g = paper_figure1();
        assert!(matches!(
            par_multi_source_shared(&g, &[]).unwrap_err(),
            GraphError::NoSources
        ));
        assert!(matches!(
            par_multi_source_shared(&g, &[TemporalNode::from_raw(2, 0)]).unwrap_err(),
            GraphError::InactiveRoot { .. }
        ));
    }

    #[test]
    fn multi_source_runs_every_root() {
        let g = paper_figure1();
        let roots = g.active_nodes();
        let results = multi_source_bfs(&g, &roots);
        assert_eq!(results.len(), roots.len());
        for (root, res) in roots.iter().zip(&results) {
            let map = res.as_ref().unwrap();
            assert_eq!(map.root(), *root);
            assert_eq!(map.distance(*root), Some(0));
        }
    }
}
