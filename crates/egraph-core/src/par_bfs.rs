//! Frontier-parallel BFS over evolving graphs (rayon).
//!
//! The paper runs Algorithm 1 on a single core; the algorithm is nonetheless
//! naturally level-synchronous, and each BFS level can expand its frontier in
//! parallel because discoveries within a level are independent (ties are
//! broken by an atomic compare-and-swap on the visited word, which is how
//! classical parallel BFS implementations operate). The result is bit-for-bit
//! identical to the serial traversal — distances are determined by the level
//! structure, not by discovery order — which the test-suite and the ABL-B
//! ablation benchmark both check.

use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::distance::{DistanceMap, MultiSourceMap, UNREACHED};
use crate::error::{GraphError, Result};
use crate::graph::EvolvingGraph;
use crate::ids::TemporalNode;

/// Frontier size below which the expansion falls back to the serial loop;
/// spawning rayon tasks for a handful of nodes costs more than it saves.
const PARALLEL_FRONTIER_THRESHOLD: usize = 256;

/// Runs Algorithm 1 with parallel frontier expansion. Results are identical
/// to [`crate::bfs::bfs`].
pub fn par_bfs<G>(graph: &G, root: TemporalNode) -> Result<DistanceMap>
where
    G: EvolvingGraph + Sync,
{
    crate::bfs::check_root(graph, root)?;

    let num_nodes = graph.num_nodes();
    let size = num_nodes * graph.num_timestamps();

    // Shared visited/distance array. UNREACHED means "not yet discovered".
    let dist: Vec<AtomicU32> = (0..size).map(|_| AtomicU32::new(UNREACHED)).collect();
    dist[root.flat_index(num_nodes)].store(0, Ordering::Relaxed);

    let mut frontier: Vec<TemporalNode> = vec![root];
    let mut level: u32 = 1;

    while !frontier.is_empty() {
        let next: Vec<TemporalNode> = if frontier.len() >= PARALLEL_FRONTIER_THRESHOLD {
            frontier
                .par_iter()
                .fold(Vec::new, |mut acc, &tn| {
                    expand(graph, tn, level, num_nodes, &dist, &mut acc);
                    acc
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                })
        } else {
            let mut acc = Vec::new();
            for &tn in &frontier {
                expand(graph, tn, level, num_nodes, &dist, &mut acc);
            }
            acc
        };
        frontier = next;
        level += 1;
    }

    // Convert the atomic array into a DistanceMap.
    let mut map = DistanceMap::new(num_nodes, graph.num_timestamps(), root, false);
    for (i, d) in dist.iter().enumerate() {
        let d = d.load(Ordering::Relaxed);
        if d != UNREACHED && d != 0 {
            map.set_distance_unchecked(TemporalNode::from_flat_index(i, num_nodes), d);
        }
    }
    Ok(map)
}

#[inline]
fn expand<G: EvolvingGraph>(
    graph: &G,
    tn: TemporalNode,
    level: u32,
    num_nodes: usize,
    dist: &[AtomicU32],
    acc: &mut Vec<TemporalNode>,
) {
    graph.for_each_forward_neighbor(tn, &mut |nbr| {
        let slot = &dist[nbr.flat_index(num_nodes)];
        // First writer wins; everybody else sees the CAS fail and moves on.
        if slot
            .compare_exchange(UNREACHED, level, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            acc.push(nbr);
        }
    });
}

/// Frontier-parallel twin of [`crate::bfs::multi_source_shared`]: one shared
/// frontier seeded with every source, levels expanded across the rayon pool.
///
/// Claims are packed `(distance << 32) | source_index` keys resolved with an
/// atomic `fetch_min`, so the nearest-source distance *and* the
/// smallest-index tie-break are schedule-independent: the result is
/// bit-for-bit identical to the serial engine no matter how the pool
/// interleaves, which the workspace's multi-source oracle suite checks.
pub fn par_multi_source_shared<G>(graph: &G, sources: &[TemporalNode]) -> Result<MultiSourceMap>
where
    G: EvolvingGraph + Sync,
{
    if sources.is_empty() {
        return Err(GraphError::NoSources);
    }
    for &s in sources {
        crate::bfs::check_root(graph, s)?;
    }
    let num_nodes = graph.num_nodes();
    let size = num_nodes * graph.num_timestamps();

    let key: Vec<AtomicU64> = (0..size).map(|_| AtomicU64::new(u64::MAX)).collect();
    let mut frontier: Vec<TemporalNode> = Vec::new();
    for (i, &s) in sources.iter().enumerate() {
        let prev = key[s.flat_index(num_nodes)].fetch_min(i as u64, Ordering::Relaxed);
        if prev == u64::MAX {
            frontier.push(s);
        }
    }

    let mut level: u32 = 1;
    while !frontier.is_empty() {
        let next: Vec<TemporalNode> = if frontier.len() >= PARALLEL_FRONTIER_THRESHOLD {
            frontier
                .par_iter()
                .fold(Vec::new, |mut acc, &tn| {
                    expand_shared(graph, tn, level, num_nodes, &key, &mut acc);
                    acc
                })
                .reduce(Vec::new, |mut a, mut b| {
                    a.append(&mut b);
                    a
                })
        } else {
            let mut acc = Vec::new();
            for &tn in &frontier {
                expand_shared(graph, tn, level, num_nodes, &key, &mut acc);
            }
            acc
        };
        frontier = next;
        level += 1;
    }

    let keys: Vec<u64> = key.iter().map(|k| k.load(Ordering::Relaxed)).collect();
    Ok(MultiSourceMap::from_keys(
        num_nodes,
        graph.num_timestamps(),
        sources.to_vec(),
        &keys,
    ))
}

#[inline]
fn expand_shared<G: EvolvingGraph>(
    graph: &G,
    tn: TemporalNode,
    level: u32,
    num_nodes: usize,
    key: &[AtomicU64],
    acc: &mut Vec<TemporalNode>,
) {
    // `tn`'s attribution settled when the previous level finished (the
    // level-synchronous barrier orders all claims before any expansion).
    let src = key[tn.flat_index(num_nodes)].load(Ordering::Relaxed) & 0xFFFF_FFFF;
    let claim = (u64::from(level) << 32) | src;
    graph.for_each_forward_neighbor(tn, &mut |nbr| {
        let prev = key[nbr.flat_index(num_nodes)].fetch_min(claim, Ordering::Relaxed);
        // Exactly one claimant observes "unreached" and enqueues; same-level
        // rivals only lower the source index.
        if prev == u64::MAX {
            acc.push(nbr);
        }
    });
}

/// Runs BFS from many roots in parallel (one serial BFS per root, roots
/// distributed over the rayon pool). This is the access pattern of the
/// citation-mining workload of Section V, where an influence set is wanted
/// for every author.
pub fn multi_source_bfs<G>(graph: &G, roots: &[TemporalNode]) -> Vec<Result<DistanceMap>>
where
    G: EvolvingGraph + Sync,
{
    roots
        .par_iter()
        .map(|&root| crate::bfs::bfs(graph, root))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyListGraph;
    use crate::bfs::bfs;
    use crate::error::GraphError;
    use crate::examples::paper_figure1;
    use crate::ids::{NodeId, TimeIndex};

    #[test]
    fn parallel_matches_serial_on_paper_example() {
        let g = paper_figure1();
        for &root in &g.active_nodes() {
            let serial = bfs(&g, root).unwrap();
            let parallel = par_bfs(&g, root).unwrap();
            assert_eq!(serial.as_flat_slice(), parallel.as_flat_slice());
        }
    }

    #[test]
    fn parallel_rejects_inactive_root() {
        let g = paper_figure1();
        assert!(matches!(
            par_bfs(&g, TemporalNode::from_raw(2, 0)).unwrap_err(),
            GraphError::InactiveRoot { .. }
        ));
    }

    #[test]
    fn parallel_matches_serial_on_a_dense_random_graph() {
        // Large enough to cross PARALLEL_FRONTIER_THRESHOLD.
        let n = 400usize;
        let n_t = 4usize;
        let mut g = AdjacencyListGraph::directed_with_unit_times(n, n_t);
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..6000 {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            let t = (next() % n_t as u64) as u32;
            if u != v {
                g.add_edge(NodeId(u), NodeId(v), TimeIndex(t)).unwrap();
            }
        }
        let root = g.active_nodes()[0];
        let serial = bfs(&g, root).unwrap();
        let parallel = par_bfs(&g, root).unwrap();
        assert_eq!(serial.num_reached(), parallel.num_reached());
        assert_eq!(serial.as_flat_slice(), parallel.as_flat_slice());
    }

    #[test]
    fn shared_frontier_twins_agree_on_paper_example() {
        let g = paper_figure1();
        let sources = g.active_nodes();
        let serial = crate::bfs::multi_source_shared(&g, &sources).unwrap();
        let parallel = par_multi_source_shared(&g, &sources).unwrap();
        assert_eq!(serial.as_flat_slice(), parallel.as_flat_slice());
        for tn in g.active_nodes() {
            assert_eq!(
                serial.nearest_source_index(tn),
                parallel.nearest_source_index(tn),
                "attribution at {tn:?}"
            );
        }
    }

    #[test]
    fn shared_frontier_twins_agree_on_a_dense_random_graph() {
        // Wide frontiers cross PARALLEL_FRONTIER_THRESHOLD.
        let n = 400usize;
        let n_t = 4usize;
        let mut g = AdjacencyListGraph::directed_with_unit_times(n, n_t);
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..6000 {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            let t = (next() % n_t as u64) as u32;
            if u != v {
                g.add_edge(NodeId(u), NodeId(v), TimeIndex(t)).unwrap();
            }
        }
        let actives = g.active_nodes();
        let sources: Vec<TemporalNode> = actives.iter().copied().step_by(97).collect();
        let serial = crate::bfs::multi_source_shared(&g, &sources).unwrap();
        let parallel = par_multi_source_shared(&g, &sources).unwrap();
        assert_eq!(serial.num_reached(), parallel.num_reached());
        assert_eq!(serial.as_flat_slice(), parallel.as_flat_slice());
        for &tn in &actives {
            assert_eq!(
                serial.nearest_source_index(tn),
                parallel.nearest_source_index(tn),
                "attribution at {tn:?}"
            );
        }
    }

    #[test]
    fn par_shared_frontier_rejects_bad_inputs() {
        let g = paper_figure1();
        assert!(matches!(
            par_multi_source_shared(&g, &[]).unwrap_err(),
            GraphError::NoSources
        ));
        assert!(matches!(
            par_multi_source_shared(&g, &[TemporalNode::from_raw(2, 0)]).unwrap_err(),
            GraphError::InactiveRoot { .. }
        ));
    }

    #[test]
    fn multi_source_runs_every_root() {
        let g = paper_figure1();
        let roots = g.active_nodes();
        let results = multi_source_bfs(&g, &roots);
        assert_eq!(results.len(), roots.len());
        for (root, res) in roots.iter().zip(&results) {
            let map = res.as_ref().unwrap();
            assert_eq!(map.root(), *root);
            assert_eq!(map.distance(*root), Some(0));
        }
    }
}
