//! [`ReversedView`]: an evolving graph with time (and edge direction)
//! reversed.
//!
//! Section V notes that "the backward search in time follows straightforwardly
//! from the forward time traversal simply by reversing the time labels, e.g.
//! by the transformation t → −t". This adaptor implements exactly that
//! transformation lazily: snapshot `t` of the view is snapshot `n − 1 − t` of
//! the underlying graph with every static edge reversed, so a *forward* BFS on
//! the view is a *backward* BFS on the original graph.
//!
//! [`crate::bfs::backward_bfs`] is usually more convenient; the view exists
//! to validate it (the two must agree) and to let any forward-only algorithm
//! run backwards without modification.

use crate::graph::EvolvingGraph;
use crate::ids::{NodeId, TemporalNode, TimeIndex, Timestamp};

/// A time- and direction-reversed view over an evolving graph.
#[derive(Clone, Copy, Debug)]
pub struct ReversedView<G> {
    inner: G,
}

impl<G: EvolvingGraph> ReversedView<G> {
    /// Wraps `inner` in a reversed view.
    pub fn new(inner: G) -> Self {
        ReversedView { inner }
    }

    /// The underlying graph.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    /// Maps a snapshot index of the view to the corresponding index of the
    /// underlying graph (and vice versa — the map is an involution).
    #[inline]
    pub fn map_time(&self, t: TimeIndex) -> TimeIndex {
        TimeIndex::from_index(self.inner.num_timestamps() - 1 - t.index())
    }

    /// Maps a temporal node of the view to the underlying graph.
    #[inline]
    pub fn map_temporal(&self, tn: TemporalNode) -> TemporalNode {
        TemporalNode::new(tn.node, self.map_time(tn.time))
    }
}

impl<G: EvolvingGraph> EvolvingGraph for ReversedView<G> {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn num_timestamps(&self) -> usize {
        self.inner.num_timestamps()
    }

    fn timestamp(&self, t: TimeIndex) -> Timestamp {
        // t → −t keeps labels strictly increasing after the index reversal.
        -self.inner.timestamp(self.map_time(t))
    }

    fn is_directed(&self) -> bool {
        self.inner.is_directed()
    }

    fn num_static_edges(&self) -> usize {
        self.inner.num_static_edges()
    }

    fn for_each_static_out(&self, v: NodeId, t: TimeIndex, f: &mut dyn FnMut(NodeId)) {
        // Out-edges of the view are in-edges of the original snapshot.
        self.inner.for_each_static_in(v, self.map_time(t), f)
    }

    fn for_each_static_in(&self, v: NodeId, t: TimeIndex, f: &mut dyn FnMut(NodeId)) {
        self.inner.for_each_static_out(v, self.map_time(t), f)
    }

    fn for_each_active_time(&self, v: NodeId, f: &mut dyn FnMut(TimeIndex)) {
        // Active times must be visited in increasing *view* order, i.e.
        // decreasing original order.
        let mut times: Vec<TimeIndex> = Vec::new();
        self.inner.for_each_active_time(v, &mut |t| times.push(t));
        for &t in times.iter().rev() {
            f(self.map_time(t));
        }
    }

    fn is_active(&self, v: NodeId, t: TimeIndex) -> bool {
        self.inner.is_active(v, self.map_time(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{backward_bfs, bfs};
    use crate::examples::paper_figure1;

    #[test]
    fn time_mapping_is_an_involution() {
        let g = paper_figure1();
        let view = ReversedView::new(&g);
        for t in 0..3u32 {
            let t = TimeIndex(t);
            assert_eq!(view.map_time(view.map_time(t)), t);
        }
    }

    #[test]
    fn labels_remain_strictly_increasing() {
        let g = paper_figure1();
        let view = ReversedView::new(&g);
        let labels = view.timestamps();
        assert_eq!(labels, vec![-3, -2, -1]);
    }

    #[test]
    fn activeness_is_preserved_under_reversal() {
        let g = paper_figure1();
        let view = ReversedView::new(&g);
        // (3, t1) inactive in the original → (3, reversed t1 = view t2) inactive.
        assert!(!view.is_active(NodeId(2), TimeIndex(2)));
        // (2, t3) active in the original → active at view time 0.
        assert!(view.is_active(NodeId(1), TimeIndex(0)));
        assert_eq!(view.num_active_nodes(), g.num_active_nodes());
    }

    #[test]
    fn forward_bfs_on_view_equals_backward_bfs_on_original() {
        let g = paper_figure1();
        let view = ReversedView::new(&g);
        // Backward from (3, t3) in the original...
        let bwd = backward_bfs(&g, TemporalNode::from_raw(2, 2)).unwrap();
        // ...is forward from (3, view-time 0) in the view.
        let fwd = bfs(&view, TemporalNode::from_raw(2, 0)).unwrap();
        for (tn, d) in bwd.reached() {
            let mapped = view.map_temporal(tn);
            assert_eq!(fwd.distance(mapped), Some(d), "mismatch at {tn:?}");
        }
        assert_eq!(bwd.num_reached(), fwd.num_reached());
    }

    #[test]
    fn static_edges_are_reversed() {
        let g = paper_figure1();
        let view = ReversedView::new(&g);
        // Original: 1→2 (nodes 0→1) at t1 (index 0) = view index 2.
        assert_eq!(
            view.static_out_neighbors(NodeId(1), TimeIndex(2)),
            vec![NodeId(0)]
        );
        assert!(view
            .static_out_neighbors(NodeId(0), TimeIndex(2))
            .is_empty());
    }
}
