//! [`AdjacencyListGraph`]: the primary evolving-graph representation.
//!
//! This is the Rust analogue of the `IntEvolvingGraph` type from the paper's
//! reference Julia package: nodes are dense integers, each snapshot stores
//! per-node adjacency lists, and each node keeps the sorted list of snapshots
//! at which it is active. Theorem 2's linear-time bound for Algorithm 1 is
//! stated for exactly this layout ("represented using adjacency lists").
//!
//! The structure supports *incremental* growth — new static edges (and new,
//! strictly later snapshots) can be appended at any point — which is what the
//! linear-scaling experiment of Figure 5 does when it "consecutively adds new
//! random static edges".

use crate::error::{GraphError, Result};
use crate::graph::EvolvingGraph;
use crate::ids::{NodeId, TemporalNode, TimeIndex, Timestamp};

/// An evolving graph stored as per-snapshot adjacency lists plus a per-node
/// active-snapshot index.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdjacencyListGraph {
    timestamps: Vec<Timestamp>,
    num_nodes: usize,
    directed: bool,
    /// `out_adj[t][v]` = nodes `w` with a static edge `(v, w)` at snapshot `t`
    /// (for undirected graphs: all neighbors of `v` at `t`).
    out_adj: Vec<Vec<Vec<NodeId>>>,
    /// `in_adj[t][v]` = nodes `u` with a static edge `(u, v)` at snapshot `t`.
    /// Empty (and unused) for undirected graphs.
    in_adj: Vec<Vec<Vec<NodeId>>>,
    /// `active[v]` = sorted snapshot indices at which `v` is active.
    active: Vec<Vec<TimeIndex>>,
    num_static_edges: usize,
}

impl AdjacencyListGraph {
    /// Creates an empty evolving graph over `num_nodes` nodes and the given
    /// strictly increasing snapshot labels.
    pub fn new(num_nodes: usize, timestamps: Vec<Timestamp>, directed: bool) -> Result<Self> {
        for (i, w) in timestamps.windows(2).enumerate() {
            if w[0] >= w[1] {
                return Err(GraphError::UnsortedTimestamps { position: i + 1 });
            }
        }
        let n_t = timestamps.len();
        Ok(AdjacencyListGraph {
            timestamps,
            num_nodes,
            directed,
            out_adj: vec![vec![Vec::new(); num_nodes]; n_t],
            in_adj: if directed {
                vec![vec![Vec::new(); num_nodes]; n_t]
            } else {
                Vec::new()
            },
            active: vec![Vec::new(); num_nodes],
            num_static_edges: 0,
        })
    }

    /// Creates an empty *directed* evolving graph.
    pub fn directed(num_nodes: usize, timestamps: Vec<Timestamp>) -> Result<Self> {
        Self::new(num_nodes, timestamps, true)
    }

    /// Creates an empty *undirected* evolving graph.
    pub fn undirected(num_nodes: usize, timestamps: Vec<Timestamp>) -> Result<Self> {
        Self::new(num_nodes, timestamps, false)
    }

    /// Creates a directed evolving graph with snapshot labels `0..n_t` — the
    /// common case for synthetic workloads.
    pub fn directed_with_unit_times(num_nodes: usize, num_timestamps: usize) -> Self {
        Self::directed(num_nodes, (0..num_timestamps as Timestamp).collect())
            .expect("unit timestamps are strictly increasing")
    }

    /// Creates an undirected evolving graph with snapshot labels `0..n_t`.
    pub fn undirected_with_unit_times(num_nodes: usize, num_timestamps: usize) -> Self {
        Self::undirected(num_nodes, (0..num_timestamps as Timestamp).collect())
            .expect("unit timestamps are strictly increasing")
    }

    /// Builds a directed evolving graph from `(src, dst, time_index)` triples.
    pub fn from_indexed_edges(
        num_nodes: usize,
        num_timestamps: usize,
        edges: &[(u32, u32, u32)],
    ) -> Result<Self> {
        let mut g = Self::directed_with_unit_times(num_nodes, num_timestamps);
        for &(u, v, t) in edges {
            g.add_edge(NodeId(u), NodeId(v), TimeIndex(t))?;
        }
        Ok(g)
    }

    /// Builds a directed evolving graph from `(src, dst, timestamp-label)`
    /// triples, inferring the node universe and the snapshot sequence.
    pub fn from_labeled_edges(edges: &[(u32, u32, Timestamp)]) -> Result<Self> {
        let num_nodes = edges
            .iter()
            .map(|&(u, v, _)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0);
        let mut labels: Vec<Timestamp> = edges.iter().map(|&(_, _, t)| t).collect();
        labels.sort_unstable();
        labels.dedup();
        let mut g = Self::directed(num_nodes, labels)?;
        for &(u, v, t) in edges {
            let ti = g
                .time_index_of(t)
                .expect("label present by construction of the snapshot sequence");
            g.add_edge(NodeId(u), NodeId(v), ti)?;
        }
        Ok(g)
    }

    /// Appends a new snapshot with label `label`, which must be strictly later
    /// than every existing label. Returns the new snapshot's index.
    ///
    /// The snapshot sequence is append-only in time: a label **equal to** the
    /// last one (a duplicate snapshot) is rejected exactly like an earlier
    /// one, preserving the strict ordering invariant of Definition 1 that
    /// every traversal and the incremental re-search layer rely on. Labels
    /// cannot be inserted between existing snapshots retroactively; on an
    /// empty sequence any label (including negative ones) starts the
    /// sequence.
    ///
    /// # Errors
    /// [`GraphError::UnsortedTimestamps`] (with `position` = the would-be
    /// index of the rejected snapshot) if `label` is not strictly later than
    /// the last label. The graph is left unchanged.
    pub fn push_timestamp(&mut self, label: Timestamp) -> Result<TimeIndex> {
        if let Some(&last) = self.timestamps.last() {
            if label <= last {
                return Err(GraphError::UnsortedTimestamps {
                    position: self.timestamps.len(),
                });
            }
        }
        self.timestamps.push(label);
        self.out_adj.push(vec![Vec::new(); self.num_nodes]);
        if self.directed {
            self.in_adj.push(vec![Vec::new(); self.num_nodes]);
        }
        Ok(TimeIndex::from_index(self.timestamps.len() - 1))
    }

    /// Grows the node universe to at least `num_nodes` nodes.
    pub fn grow_nodes(&mut self, num_nodes: usize) {
        if num_nodes <= self.num_nodes {
            return;
        }
        for snap in &mut self.out_adj {
            snap.resize(num_nodes, Vec::new());
        }
        for snap in &mut self.in_adj {
            snap.resize(num_nodes, Vec::new());
        }
        self.active.resize(num_nodes, Vec::new());
        self.num_nodes = num_nodes;
    }

    fn check_node(&self, v: NodeId) -> Result<()> {
        if v.index() >= self.num_nodes {
            Err(GraphError::NodeOutOfRange {
                node: v,
                num_nodes: self.num_nodes,
            })
        } else {
            Ok(())
        }
    }

    fn check_time(&self, t: TimeIndex) -> Result<()> {
        if t.index() >= self.timestamps.len() {
            Err(GraphError::TimeOutOfRange {
                time: t,
                num_timestamps: self.timestamps.len(),
            })
        } else {
            Ok(())
        }
    }

    fn mark_active(&mut self, v: NodeId, t: TimeIndex) {
        let times = &mut self.active[v.index()];
        match times.binary_search(&t) {
            Ok(_) => {}
            Err(pos) => times.insert(pos, t),
        }
    }

    /// Inserts the static edge `(u, v)` at snapshot `t`, marking both end
    /// points active at `t`. Parallel edges are permitted (the structure is a
    /// temporal multigraph); self-loops are rejected because they do not make
    /// a node active (Definition 3).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, t: TimeIndex) -> Result<()> {
        self.check_node(u)?;
        self.check_node(v)?;
        self.check_time(t)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u, time: t });
        }
        self.out_adj[t.index()][u.index()].push(v);
        if self.directed {
            self.in_adj[t.index()][v.index()].push(u);
        } else {
            self.out_adj[t.index()][v.index()].push(u);
        }
        self.mark_active(u, t);
        self.mark_active(v, t);
        self.num_static_edges += 1;
        Ok(())
    }

    /// Inserts the edge only if it is not already present; returns `true` if
    /// a new edge was inserted.
    pub fn add_edge_unique(&mut self, u: NodeId, v: NodeId, t: TimeIndex) -> Result<bool> {
        self.check_node(u)?;
        self.check_node(v)?;
        self.check_time(t)?;
        if self.has_static_edge(u, v, t) {
            return Ok(false);
        }
        self.add_edge(u, v, t)?;
        Ok(true)
    }

    /// Inserts an edge given a timestamp *label* rather than an index.
    ///
    /// The label must resolve to an **existing** snapshot: this method never
    /// creates snapshots implicitly, so a label that falls between existing
    /// labels (or after the last one) is rejected rather than silently
    /// rounded to a neighboring snapshot — append new snapshots explicitly
    /// with [`AdjacencyListGraph::push_timestamp`] first.
    ///
    /// # Errors
    /// [`GraphError::UnknownTimestamp`] if no snapshot carries `label`, plus
    /// the [`AdjacencyListGraph::add_edge`] errors.
    pub fn add_edge_at(&mut self, u: NodeId, v: NodeId, label: Timestamp) -> Result<()> {
        let t = self
            .time_index_of(label)
            .ok_or(GraphError::UnknownTimestamp { timestamp: label })?;
        self.add_edge(u, v, t)
    }

    /// Whether the static edge `(u, v)` exists at snapshot `t`.
    pub fn has_static_edge(&self, u: NodeId, v: NodeId, t: TimeIndex) -> bool {
        if u.index() >= self.num_nodes || t.index() >= self.timestamps.len() {
            return false;
        }
        self.out_adj[t.index()][u.index()].contains(&v)
    }

    /// Out-neighbors of `v` at snapshot `t` as a slice (no allocation) — the
    /// fast path used by [`crate::bfs::bfs`].
    #[inline]
    pub fn out_slice(&self, v: NodeId, t: TimeIndex) -> &[NodeId] {
        &self.out_adj[t.index()][v.index()]
    }

    /// In-neighbors of `v` at snapshot `t` as a slice (no allocation). For
    /// undirected graphs this is the same slice as [`Self::out_slice`].
    #[inline]
    pub fn in_slice(&self, v: NodeId, t: TimeIndex) -> &[NodeId] {
        if self.directed {
            &self.in_adj[t.index()][v.index()]
        } else {
            &self.out_adj[t.index()][v.index()]
        }
    }

    /// The sorted snapshot indices at which `v` is active, as a slice.
    #[inline]
    pub fn active_slice(&self, v: NodeId) -> &[TimeIndex] {
        &self.active[v.index()]
    }

    /// The first active snapshot of `v` that is strictly later than `t`, if
    /// any. Useful for "next hop in time" style traversals.
    pub fn next_active_time(&self, v: NodeId, t: TimeIndex) -> Option<TimeIndex> {
        let times = self.active_slice(v);
        match times.binary_search(&t) {
            Ok(pos) => times.get(pos + 1).copied(),
            Err(pos) => times.get(pos).copied(),
        }
    }

    /// Total number of temporal nodes (active or not): `num_nodes × n_t`.
    pub fn num_temporal_nodes(&self) -> usize {
        self.num_nodes * self.timestamps.len()
    }

    /// Iterates over all static edges as `(src, dst, time)` triples. Each
    /// undirected edge is reported once with the end point order in which it
    /// was inserted.
    pub fn edge_triples(&self) -> Vec<(NodeId, NodeId, TimeIndex)> {
        let mut out = Vec::with_capacity(self.num_static_edges);
        for (ti, snap) in self.out_adj.iter().enumerate() {
            let t = TimeIndex::from_index(ti);
            for (vi, nbrs) in snap.iter().enumerate() {
                let v = NodeId::from_index(vi);
                for &w in nbrs {
                    if self.directed || v < w {
                        out.push((v, w, t));
                    }
                }
            }
        }
        out
    }

    /// Total degree (in + out) of the temporal node `(v, t)`.
    pub fn temporal_degree(&self, v: NodeId, t: TimeIndex) -> usize {
        if self.directed {
            self.out_slice(v, t).len() + self.in_slice(v, t).len()
        } else {
            self.out_slice(v, t).len()
        }
    }

    /// Returns all active temporal nodes at snapshot `t`.
    pub fn active_at(&self, t: TimeIndex) -> Vec<TemporalNode> {
        (0..self.num_nodes)
            .map(NodeId::from_index)
            .filter(|&v| self.is_active(v, t))
            .map(|v| TemporalNode::new(v, t))
            .collect()
    }
}

impl EvolvingGraph for AdjacencyListGraph {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_timestamps(&self) -> usize {
        self.timestamps.len()
    }

    fn timestamp(&self, t: TimeIndex) -> Timestamp {
        self.timestamps[t.index()]
    }

    fn is_directed(&self) -> bool {
        self.directed
    }

    fn num_static_edges(&self) -> usize {
        self.num_static_edges
    }

    fn for_each_static_out(&self, v: NodeId, t: TimeIndex, f: &mut dyn FnMut(NodeId)) {
        for &w in self.out_slice(v, t) {
            f(w);
        }
    }

    fn for_each_static_in(&self, v: NodeId, t: TimeIndex, f: &mut dyn FnMut(NodeId)) {
        for &u in self.in_slice(v, t) {
            f(u);
        }
    }

    fn for_each_active_time(&self, v: NodeId, f: &mut dyn FnMut(TimeIndex)) {
        for &t in self.active_slice(v) {
            f(t);
        }
    }

    fn is_active(&self, v: NodeId, t: TimeIndex) -> bool {
        self.active[v.index()].binary_search(&t).is_ok()
    }

    fn time_index_of(&self, timestamp: Timestamp) -> Option<TimeIndex> {
        self.timestamps
            .binary_search(&timestamp)
            .ok()
            .map(TimeIndex::from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_unsorted_timestamps() {
        let err = AdjacencyListGraph::directed(3, vec![1, 3, 2]).unwrap_err();
        assert_eq!(err, GraphError::UnsortedTimestamps { position: 2 });
    }

    #[test]
    fn rejects_self_loops_and_out_of_range() {
        let mut g = AdjacencyListGraph::directed_with_unit_times(3, 2);
        assert!(matches!(
            g.add_edge(NodeId(1), NodeId(1), TimeIndex(0)),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            g.add_edge(NodeId(5), NodeId(0), TimeIndex(0)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            g.add_edge(NodeId(0), NodeId(1), TimeIndex(9)),
            Err(GraphError::TimeOutOfRange { .. })
        ));
    }

    #[test]
    fn directed_insertion_updates_both_adjacency_and_activity() {
        let mut g = AdjacencyListGraph::directed_with_unit_times(4, 3);
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(1)).unwrap();
        assert_eq!(g.out_slice(NodeId(0), TimeIndex(1)), &[NodeId(1)]);
        assert_eq!(g.in_slice(NodeId(1), TimeIndex(1)), &[NodeId(0)]);
        assert!(g.is_active(NodeId(0), TimeIndex(1)));
        assert!(g.is_active(NodeId(1), TimeIndex(1)));
        assert!(!g.is_active(NodeId(0), TimeIndex(0)));
        assert_eq!(g.num_static_edges(), 1);
    }

    #[test]
    fn undirected_insertion_is_symmetric() {
        let mut g = AdjacencyListGraph::undirected_with_unit_times(3, 1);
        g.add_edge(NodeId(0), NodeId(2), TimeIndex(0)).unwrap();
        assert_eq!(g.out_slice(NodeId(0), TimeIndex(0)), &[NodeId(2)]);
        assert_eq!(g.out_slice(NodeId(2), TimeIndex(0)), &[NodeId(0)]);
        assert_eq!(g.in_slice(NodeId(0), TimeIndex(0)), &[NodeId(2)]);
        assert_eq!(g.num_static_edges(), 1);
        assert_eq!(g.edge_triples().len(), 1);
    }

    #[test]
    fn add_edge_unique_deduplicates() {
        let mut g = AdjacencyListGraph::directed_with_unit_times(3, 1);
        assert!(g
            .add_edge_unique(NodeId(0), NodeId(1), TimeIndex(0))
            .unwrap());
        assert!(!g
            .add_edge_unique(NodeId(0), NodeId(1), TimeIndex(0))
            .unwrap());
        assert_eq!(g.num_static_edges(), 1);
    }

    #[test]
    fn labeled_edge_construction_infers_universe() {
        let g = AdjacencyListGraph::from_labeled_edges(&[(0, 1, 2010), (1, 2, 2012), (0, 2, 2011)])
            .unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_timestamps(), 3);
        assert_eq!(g.timestamps(), vec![2010, 2011, 2012]);
        assert!(g.has_static_edge(NodeId(1), NodeId(2), TimeIndex(2)));
        assert_eq!(g.time_index_of(2011), Some(TimeIndex(1)));
    }

    #[test]
    fn push_timestamp_appends_and_rejects_non_increasing() {
        let mut g = AdjacencyListGraph::directed(2, vec![10]).unwrap();
        let t = g.push_timestamp(20).unwrap();
        assert_eq!(t, TimeIndex(1));
        assert!(g.push_timestamp(15).is_err());
        g.add_edge(NodeId(0), NodeId(1), t).unwrap();
        assert!(g.is_active(NodeId(0), t));
    }

    #[test]
    fn push_timestamp_rejects_duplicate_labels() {
        // The live append path stresses exactly this: a duplicate label must
        // be rejected like a non-monotonic one, with the would-be position.
        let mut g = AdjacencyListGraph::directed(2, vec![10, 20]).unwrap();
        assert_eq!(
            g.push_timestamp(20).unwrap_err(),
            GraphError::UnsortedTimestamps { position: 2 }
        );
        // The failed push leaves the graph unchanged.
        assert_eq!(g.num_timestamps(), 2);
        assert_eq!(g.push_timestamp(21).unwrap(), TimeIndex(2));
    }

    #[test]
    fn push_timestamp_starts_empty_sequences_with_any_label() {
        let mut g = AdjacencyListGraph::directed(2, Vec::new()).unwrap();
        assert_eq!(g.push_timestamp(-5).unwrap(), TimeIndex(0));
        assert_eq!(g.push_timestamp(-4).unwrap(), TimeIndex(1));
        assert_eq!(g.timestamps(), vec![-5, -4]);
    }

    #[test]
    fn add_edge_at_rejects_labels_between_and_beyond_snapshots() {
        let mut g = AdjacencyListGraph::directed(3, vec![10, 30]).unwrap();
        // Between existing labels: no implicit snapshot creation.
        assert_eq!(
            g.add_edge_at(NodeId(0), NodeId(1), 20).unwrap_err(),
            GraphError::UnknownTimestamp { timestamp: 20 }
        );
        // Beyond the last label: same.
        assert_eq!(
            g.add_edge_at(NodeId(0), NodeId(1), 40).unwrap_err(),
            GraphError::UnknownTimestamp { timestamp: 40 }
        );
        assert_eq!(g.num_static_edges(), 0);
        // Exact labels resolve.
        g.add_edge_at(NodeId(0), NodeId(1), 30).unwrap();
        assert!(g.has_static_edge(NodeId(0), NodeId(1), TimeIndex(1)));
    }

    #[test]
    fn grow_nodes_extends_universe() {
        let mut g = AdjacencyListGraph::directed_with_unit_times(2, 2);
        g.grow_nodes(5);
        assert_eq!(g.num_nodes(), 5);
        g.add_edge(NodeId(4), NodeId(0), TimeIndex(1)).unwrap();
        assert!(g.is_active(NodeId(4), TimeIndex(1)));
    }

    #[test]
    fn next_active_time_finds_strictly_later_snapshot() {
        let g = crate::examples::paper_figure1();
        // Node 1 (paper label 2) is active at t1 and t3.
        assert_eq!(
            g.next_active_time(NodeId(1), TimeIndex(0)),
            Some(TimeIndex(2))
        );
        assert_eq!(g.next_active_time(NodeId(1), TimeIndex(2)), None);
        // Node 0 (paper label 1) is active at t1 and t2.
        assert_eq!(
            g.next_active_time(NodeId(0), TimeIndex(0)),
            Some(TimeIndex(1))
        );
    }

    #[test]
    fn active_at_reports_only_active_nodes() {
        let g = crate::examples::paper_figure1();
        let at_t1 = g.active_at(TimeIndex(0));
        assert_eq!(
            at_t1,
            vec![TemporalNode::from_raw(0, 0), TemporalNode::from_raw(1, 0)]
        );
    }

    #[test]
    fn temporal_degree_counts_both_directions() {
        let mut g = AdjacencyListGraph::directed_with_unit_times(3, 1);
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
        g.add_edge(NodeId(2), NodeId(1), TimeIndex(0)).unwrap();
        assert_eq!(g.temporal_degree(NodeId(1), TimeIndex(0)), 2);
        assert_eq!(g.temporal_degree(NodeId(0), TimeIndex(0)), 1);
    }
}
