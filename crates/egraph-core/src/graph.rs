//! The [`EvolvingGraph`] trait: the abstract interface every evolving-graph
//! representation implements.
//!
//! An evolving graph (Definition 1) is a time-ordered sequence of static
//! graphs `G_n = ⟨G[1], …, G[n]⟩` with strictly increasing time labels. The
//! trait exposes exactly the queries the traversal algorithms need:
//!
//! * the node universe and snapshot sequence,
//! * the static edges incident to a node at a snapshot,
//! * the snapshots at which a node is *active* (Definition 3), and
//! * the derived *forward* / *backward* neighbor relations (Definition 5)
//!   that combine static edges with causal edges.
//!
//! Neighbor enumeration uses callback-style visitors (`&mut dyn FnMut`) so
//! that view adaptors (time windows, reversed time) can implement the trait
//! without allocating, while remaining object safe.

use crate::ids::{CausalEdge, NodeId, StaticEdge, TemporalNode, TimeIndex, Timestamp};

/// Abstract interface over evolving-graph representations.
///
/// Implementations must uphold the following invariants, which the traversal
/// algorithms rely on:
///
/// * snapshot labels are strictly increasing in [`TimeIndex`] order;
/// * `for_each_static_out`/`in` never report self-loops;
/// * `for_each_active_time` reports snapshot indices in increasing order and
///   reports exactly the snapshots at which the node has at least one
///   incident static edge (Definition 3).
pub trait EvolvingGraph {
    /// Size of the node universe. Valid node identifiers are `0..num_nodes`.
    fn num_nodes(&self) -> usize;

    /// Number of snapshots `n` in the sequence.
    fn num_timestamps(&self) -> usize;

    /// The time label of snapshot `t`.
    ///
    /// # Panics
    /// May panic if `t` is out of range.
    fn timestamp(&self, t: TimeIndex) -> Timestamp;

    /// Whether edges are directed. Undirected graphs report each static edge
    /// from both end points.
    fn is_directed(&self) -> bool;

    /// Total number of static edges `|Ẽ|` (each undirected edge counted once).
    fn num_static_edges(&self) -> usize;

    /// Visits every node `w` such that the static edge `(v, w)` exists in
    /// snapshot `t` (for undirected graphs: every neighbor of `v` at `t`).
    fn for_each_static_out(&self, v: NodeId, t: TimeIndex, f: &mut dyn FnMut(NodeId));

    /// Visits every node `u` such that the static edge `(u, v)` exists in
    /// snapshot `t` (for undirected graphs this coincides with
    /// [`EvolvingGraph::for_each_static_out`]).
    fn for_each_static_in(&self, v: NodeId, t: TimeIndex, f: &mut dyn FnMut(NodeId));

    /// Visits, in increasing order, every snapshot index at which `v` is an
    /// active node.
    fn for_each_active_time(&self, v: NodeId, f: &mut dyn FnMut(TimeIndex));

    // ------------------------------------------------------------------
    // Provided methods
    // ------------------------------------------------------------------

    /// All snapshot labels, earliest first.
    fn timestamps(&self) -> Vec<Timestamp> {
        (0..self.num_timestamps())
            .map(|i| self.timestamp(TimeIndex::from_index(i)))
            .collect()
    }

    /// Resolves a time label to its snapshot index, if present.
    ///
    /// Labels are strictly increasing in [`TimeIndex`] order (a trait
    /// invariant), so the lookup is a binary search: `O(log n)` calls to
    /// [`EvolvingGraph::timestamp`] instead of a linear scan.
    fn time_index_of(&self, timestamp: Timestamp) -> Option<TimeIndex> {
        let mut lo = 0usize;
        let mut hi = self.num_timestamps();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.timestamp(TimeIndex::from_index(mid)).cmp(&timestamp) {
                core::cmp::Ordering::Equal => return Some(TimeIndex::from_index(mid)),
                core::cmp::Ordering::Less => lo = mid + 1,
                core::cmp::Ordering::Greater => hi = mid,
            }
        }
        None
    }

    /// Whether the temporal node `(v, t)` is active (Definition 3): it has at
    /// least one incident static edge at snapshot `t`.
    fn is_active(&self, v: NodeId, t: TimeIndex) -> bool {
        let mut active = false;
        self.for_each_active_time(v, &mut |ti| {
            if ti == t {
                active = true;
            }
        });
        active
    }

    /// The snapshots at which `v` is active, in increasing order.
    fn active_times(&self, v: NodeId) -> Vec<TimeIndex> {
        let mut out = Vec::new();
        self.for_each_active_time(v, &mut |t| out.push(t));
        out
    }

    /// All active temporal nodes of the graph — the node set `V` of the
    /// equivalent static graph in Theorem 1.
    fn active_nodes(&self) -> Vec<TemporalNode> {
        let mut out = Vec::new();
        for v in 0..self.num_nodes() {
            let node = NodeId::from_index(v);
            self.for_each_active_time(node, &mut |t| out.push(TemporalNode::new(node, t)));
        }
        out
    }

    /// Number of active temporal nodes `|V|`.
    fn num_active_nodes(&self) -> usize {
        let mut count = 0usize;
        for v in 0..self.num_nodes() {
            self.for_each_active_time(NodeId::from_index(v), &mut |_| count += 1);
        }
        count
    }

    /// The out-neighbors of `v` along static edges of snapshot `t`.
    fn static_out_neighbors(&self, v: NodeId, t: TimeIndex) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.for_each_static_out(v, t, &mut |w| out.push(w));
        out
    }

    /// The in-neighbors of `v` along static edges of snapshot `t`.
    fn static_in_neighbors(&self, v: NodeId, t: TimeIndex) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.for_each_static_in(v, t, &mut |w| out.push(w));
        out
    }

    /// Visits every *forward neighbor* (Definition 5) of the temporal node
    /// `(v, t)`:
    ///
    /// * `(w, t)` for every static edge `(v, w)` in snapshot `t`, and
    /// * `(v, t′)` for every later snapshot `t′ > t` at which `v` is active
    ///   (the causal edges `E′` of Theorem 1).
    ///
    /// If `(v, t)` is inactive nothing is visited — temporal paths cannot
    /// start at an inactive node (Definition 4).
    fn for_each_forward_neighbor(&self, tn: TemporalNode, f: &mut dyn FnMut(TemporalNode)) {
        if !self.is_active(tn.node, tn.time) {
            return;
        }
        self.for_each_static_out(tn.node, tn.time, &mut |w| {
            f(TemporalNode::new(w, tn.time));
        });
        self.for_each_active_time(tn.node, &mut |t| {
            if t > tn.time {
                f(TemporalNode::new(tn.node, t));
            }
        });
    }

    /// Visits every *backward neighbor* of `(v, t)`: the temporal nodes of
    /// which `(v, t)` is a forward neighbor. Used by the backward-in-time
    /// searches of Section V.
    fn for_each_backward_neighbor(&self, tn: TemporalNode, f: &mut dyn FnMut(TemporalNode)) {
        if !self.is_active(tn.node, tn.time) {
            return;
        }
        self.for_each_static_in(tn.node, tn.time, &mut |u| {
            f(TemporalNode::new(u, tn.time));
        });
        self.for_each_active_time(tn.node, &mut |t| {
            if t < tn.time {
                f(TemporalNode::new(tn.node, t));
            }
        });
    }

    /// The forward neighbors of `(v, t)` collected into a vector.
    fn forward_neighbors(&self, tn: TemporalNode) -> Vec<TemporalNode> {
        let mut out = Vec::new();
        self.for_each_forward_neighbor(tn, &mut |x| out.push(x));
        out
    }

    /// The backward neighbors of `(v, t)` collected into a vector.
    fn backward_neighbors(&self, tn: TemporalNode) -> Vec<TemporalNode> {
        let mut out = Vec::new();
        self.for_each_backward_neighbor(tn, &mut |x| out.push(x));
        out
    }

    /// All static edges with their time labels — the set `Ẽ` of Theorem 1.
    /// For undirected graphs each edge appears once, with `src < dst`.
    fn static_edges(&self) -> Vec<StaticEdge> {
        let mut out = Vec::new();
        for t in 0..self.num_timestamps() {
            let t = TimeIndex::from_index(t);
            for v in 0..self.num_nodes() {
                let v = NodeId::from_index(v);
                self.for_each_static_out(v, t, &mut |w| {
                    if self.is_directed() || v < w {
                        out.push(StaticEdge::new(v, w, t));
                    }
                });
            }
        }
        out
    }

    /// All causal edges `E′`: for each node, every ordered pair of distinct
    /// active snapshots `(s, t)` with `s < t` (Theorem 1).
    ///
    /// The size of this set is quadratic in the number of active snapshots
    /// per node; algorithms never materialise it, but it is the ground truth
    /// against which the implicit traversal is tested.
    fn causal_edges(&self) -> Vec<CausalEdge> {
        let mut out = Vec::new();
        for v in 0..self.num_nodes() {
            let v = NodeId::from_index(v);
            let times = self.active_times(v);
            for (i, &s) in times.iter().enumerate() {
                for &t in &times[i + 1..] {
                    out.push(CausalEdge::new(v, s, t));
                }
            }
        }
        out
    }

    /// Number of edges `|E| = |Ẽ| + |E′|` of the equivalent static graph
    /// (directed case; undirected static edges count twice as in the proof of
    /// Theorem 1).
    fn num_equivalent_edges(&self) -> usize {
        let static_edges = if self.is_directed() {
            self.num_static_edges()
        } else {
            2 * self.num_static_edges()
        };
        static_edges + self.causal_edges().len()
    }
}

/// Blanket implementation so `&G` can be handed to algorithms generic over
/// `G: EvolvingGraph`.
impl<G: EvolvingGraph + ?Sized> EvolvingGraph for &G {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }
    fn num_timestamps(&self) -> usize {
        (**self).num_timestamps()
    }
    fn timestamp(&self, t: TimeIndex) -> Timestamp {
        (**self).timestamp(t)
    }
    fn is_directed(&self) -> bool {
        (**self).is_directed()
    }
    fn num_static_edges(&self) -> usize {
        (**self).num_static_edges()
    }
    fn for_each_static_out(&self, v: NodeId, t: TimeIndex, f: &mut dyn FnMut(NodeId)) {
        (**self).for_each_static_out(v, t, f)
    }
    fn for_each_static_in(&self, v: NodeId, t: TimeIndex, f: &mut dyn FnMut(NodeId)) {
        (**self).for_each_static_in(v, t, f)
    }
    fn for_each_active_time(&self, v: NodeId, f: &mut dyn FnMut(TimeIndex)) {
        (**self).for_each_active_time(v, f)
    }
    fn is_active(&self, v: NodeId, t: TimeIndex) -> bool {
        (**self).is_active(v, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyListGraph;

    fn figure1() -> AdjacencyListGraph {
        crate::examples::paper_figure1()
    }

    #[test]
    fn forward_neighbors_of_paper_example_match_section_ii() {
        let g = figure1();
        // "the forward neighbors of (1, t1) are (2, t1) and (1, t2)"
        let mut fwd = g.forward_neighbors(TemporalNode::from_raw(0, 0));
        fwd.sort();
        assert_eq!(
            fwd,
            vec![TemporalNode::from_raw(1, 0), TemporalNode::from_raw(0, 1)]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
        );
        // "the only forward neighbor of (2, t1) is (2, t3)"
        let fwd = g.forward_neighbors(TemporalNode::from_raw(1, 0));
        assert_eq!(fwd, vec![TemporalNode::from_raw(1, 2)]);
    }

    #[test]
    fn inactive_nodes_have_no_forward_neighbors() {
        let g = figure1();
        // (3, t1) is inactive in the paper's example.
        assert!(!g.is_active(NodeId(2), TimeIndex(0)));
        assert!(g.forward_neighbors(TemporalNode::from_raw(2, 0)).is_empty());
        assert!(g
            .backward_neighbors(TemporalNode::from_raw(2, 0))
            .is_empty());
    }

    #[test]
    fn active_nodes_match_paper_listing() {
        let g = figure1();
        let mut active = g.active_nodes();
        active.sort();
        let mut expected = vec![
            TemporalNode::from_raw(0, 0),
            TemporalNode::from_raw(1, 0),
            TemporalNode::from_raw(0, 1),
            TemporalNode::from_raw(2, 1),
            TemporalNode::from_raw(1, 2),
            TemporalNode::from_raw(2, 2),
        ];
        expected.sort();
        assert_eq!(active, expected);
        assert_eq!(g.num_active_nodes(), 6);
    }

    #[test]
    fn causal_edges_match_paper_listing() {
        let g = figure1();
        let mut causal = g.causal_edges();
        causal.sort();
        let mut expected = vec![
            CausalEdge::new(NodeId(0), TimeIndex(0), TimeIndex(1)),
            CausalEdge::new(NodeId(1), TimeIndex(0), TimeIndex(2)),
            CausalEdge::new(NodeId(2), TimeIndex(1), TimeIndex(2)),
        ];
        expected.sort();
        assert_eq!(causal, expected);
    }

    #[test]
    fn equivalent_edge_count_matches_figure4() {
        let g = figure1();
        // |Ẽ| = 3 static edges, |E'| = 3 causal edges.
        assert_eq!(g.num_static_edges(), 3);
        assert_eq!(g.num_equivalent_edges(), 6);
    }

    #[test]
    fn backward_neighbors_invert_forward_neighbors() {
        let g = figure1();
        for &a in &g.active_nodes() {
            for &b in &g.forward_neighbors(a) {
                assert!(
                    g.backward_neighbors(b).contains(&a),
                    "{a:?} -> {b:?} not inverted"
                );
            }
        }
    }

    #[test]
    fn time_index_of_resolves_labels() {
        let g = figure1();
        assert_eq!(g.time_index_of(1), Some(TimeIndex(0)));
        assert_eq!(g.time_index_of(3), Some(TimeIndex(2)));
        assert_eq!(g.time_index_of(99), None);
    }

    #[test]
    fn time_index_of_binary_search_agrees_with_linear_scan() {
        // Sparse labels with gaps exercise every branch of the search.
        let labels: Vec<i64> = vec![-40, -7, 0, 3, 4, 19, 100, 1000];
        let g = AdjacencyListGraph::directed(1, labels.clone()).unwrap();
        for probe in -45i64..1005 {
            let linear = labels
                .iter()
                .position(|&l| l == probe)
                .map(TimeIndex::from_index);
            assert_eq!(g.time_index_of(probe), linear, "label {probe}");
        }
    }

    #[test]
    fn time_index_of_handles_empty_sequences() {
        let g = AdjacencyListGraph::directed(1, Vec::new()).unwrap();
        assert_eq!(g.time_index_of(0), None);
    }
}
