//! A minimal static directed graph used as a substrate.
//!
//! Two places need an ordinary (non-evolving) graph:
//!
//! * the snapshots of a [`crate::snapshots::SnapshotSequence`], and
//! * the *equivalent static graph* `G = (V, Ẽ ∪ E′)` constructed in the proof
//!   of Theorem 1, on which classical BFS must agree with the evolving-graph
//!   BFS of Algorithm 1.
//!
//! The implementation is intentionally small: adjacency lists, degree
//! queries, and a textbook BFS.

use crate::ids::NodeId;

/// A static directed graph over dense node identifiers `0..num_nodes`.
#[derive(Clone, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StaticGraph {
    out_adj: Vec<Vec<u32>>,
    in_adj: Vec<Vec<u32>>,
    num_edges: usize,
}

impl StaticGraph {
    /// Creates an empty graph with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        StaticGraph {
            out_adj: vec![Vec::new(); num_nodes],
            in_adj: vec![Vec::new(); num_nodes],
            num_edges: 0,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Grows the node universe to at least `num_nodes`.
    pub fn grow(&mut self, num_nodes: usize) {
        if num_nodes > self.out_adj.len() {
            self.out_adj.resize(num_nodes, Vec::new());
            self.in_adj.resize(num_nodes, Vec::new());
        }
    }

    /// Adds the directed edge `u → v` (parallel edges allowed).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        let needed = u.max(v) + 1;
        self.grow(needed);
        self.out_adj[u].push(v as u32);
        self.in_adj[v].push(u as u32);
        self.num_edges += 1;
    }

    /// Adds the edge only if not already present; returns whether it was new.
    pub fn add_edge_unique(&mut self, u: usize, v: usize) -> bool {
        let needed = u.max(v) + 1;
        self.grow(needed);
        if self.out_adj[u].contains(&(v as u32)) {
            return false;
        }
        self.add_edge(u, v);
        true
    }

    /// Whether the directed edge `u → v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.out_adj
            .get(u)
            .map(|adj| adj.contains(&(v as u32)))
            .unwrap_or(false)
    }

    /// Out-neighbors of `u`.
    pub fn out_neighbors(&self, u: usize) -> &[u32] {
        &self.out_adj[u]
    }

    /// In-neighbors of `u`.
    pub fn in_neighbors(&self, u: usize) -> &[u32] {
        &self.in_adj[u]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: usize) -> usize {
        self.out_adj[u].len()
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: usize) -> usize {
        self.in_adj[u].len()
    }

    /// All edges as `(src, dst)` pairs.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.num_edges);
        for (u, adj) in self.out_adj.iter().enumerate() {
            for &v in adj {
                out.push((NodeId::from_index(u), NodeId(v)));
            }
        }
        out
    }

    /// Classical BFS from `root`: returns `dist[v]` with `u32::MAX` marking
    /// unreachable nodes. This is the reference against which the
    /// evolving-graph BFS is validated (Theorem 1 reduces the latter to the
    /// former on the equivalent static graph).
    pub fn bfs_distances(&self, root: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.num_nodes()];
        if root >= self.num_nodes() {
            return dist;
        }
        dist[root] = 0;
        let mut frontier = vec![root as u32];
        let mut next = Vec::new();
        let mut level = 0u32;
        while !frontier.is_empty() {
            level += 1;
            next.clear();
            for &u in &frontier {
                for &v in &self.out_adj[u as usize] {
                    if dist[v as usize] == u32::MAX {
                        dist[v as usize] = level;
                        next.push(v);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        dist
    }

    /// Whether the graph is acyclic (used by the nilpotency Lemma 1 tests).
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm: the graph is acyclic iff all nodes can be removed
        // in topological order.
        let n = self.num_nodes();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.in_adj[v].len()).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut removed = 0usize;
        while let Some(u) = queue.pop() {
            removed += 1;
            for &v in &self.out_adj[u] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v as usize);
                }
            }
        }
        removed == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_edges() {
        let g = StaticGraph::new(3);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_acyclic());
    }

    #[test]
    fn add_edge_grows_universe_as_needed() {
        let mut g = StaticGraph::new(0);
        g.add_edge(2, 5);
        assert_eq!(g.num_nodes(), 6);
        assert!(g.has_edge(2, 5));
        assert!(!g.has_edge(5, 2));
        assert_eq!(g.out_degree(2), 1);
        assert_eq!(g.in_degree(5), 1);
    }

    #[test]
    fn add_edge_unique_deduplicates() {
        let mut g = StaticGraph::new(3);
        assert!(g.add_edge_unique(0, 1));
        assert!(!g.add_edge_unique(0, 1));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn bfs_distances_on_a_path() {
        let mut g = StaticGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2, 3]);
        assert_eq!(g.bfs_distances(2), vec![u32::MAX, u32::MAX, 0, 1]);
    }

    #[test]
    fn bfs_prefers_shortest_route() {
        let mut g = StaticGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g.add_edge(2, 3);
        let d = g.bfs_distances(0);
        assert_eq!(d[2], 1);
        assert_eq!(d[3], 2);
    }

    #[test]
    fn cycle_detection() {
        let mut g = StaticGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.is_acyclic());
        g.add_edge(2, 0);
        assert!(!g.is_acyclic());
    }

    #[test]
    fn edges_lists_every_directed_edge() {
        let mut g = StaticGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let e = g.edges();
        assert_eq!(e.len(), 2);
        assert!(e.contains(&(NodeId(0), NodeId(1))));
    }
}
