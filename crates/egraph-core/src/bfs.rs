//! Algorithm 1: breadth-first search over an evolving graph.
//!
//! The traversal is identical to classical BFS except that the neighbor
//! relation is the *forward neighbor* relation of Definition 5 — static edges
//! inside the current snapshot plus causal edges to every later snapshot at
//! which the same node is active. By Theorem 1 this is exactly BFS on the
//! equivalent static graph `G = (V, Ẽ ∪ E′)`, and by Theorem 2 it runs in
//! `O(|E| + |V|)` when the graph is stored as adjacency lists.
//!
//! Two entry points are provided:
//!
//! * [`bfs`] / [`bfs_with_parents`] — generic over any [`EvolvingGraph`];
//! * [`distance_between`], [`is_reachable`], [`reachable_set`] — small
//!   conveniences layered on top.
//!
//! Backward-in-time traversal (Section V's `T⁻¹`) lives in
//! [`crate::reverse`], and the frontier-parallel variant in
//! [`mod@crate::par_bfs`].

use crate::distance::{DistanceMap, MultiSourceMap};
use crate::error::{GraphError, Result};
use crate::graph::EvolvingGraph;
use crate::ids::{NodeId, TemporalNode, TimeIndex};

/// Direction of a temporal traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Follow forward neighbors: static edges plus causal edges to later
    /// snapshots. Computes the influence set `T(a, t)` of Section V.
    Forward,
    /// Follow backward neighbors: reversed static edges plus causal edges to
    /// earlier snapshots. Computes `T⁻¹(a, t)`.
    Backward,
}

/// Runs Algorithm 1 from `root`, returning distances only.
///
/// # Errors
/// Returns [`GraphError::InactiveRoot`] if the root is not an active temporal
/// node (Definition 4 makes every temporal path from it empty), and
/// [`GraphError::TimeOutOfRange`] / [`GraphError::NodeOutOfRange`] if the
/// root lies outside the graph.
pub fn bfs<G: EvolvingGraph>(graph: &G, root: TemporalNode) -> Result<DistanceMap> {
    bfs_impl(graph, root, false, Direction::Forward)
}

/// Runs Algorithm 1 from `root`, additionally recording BFS-tree parents so
/// shortest temporal paths can be reconstructed.
pub fn bfs_with_parents<G: EvolvingGraph>(graph: &G, root: TemporalNode) -> Result<DistanceMap> {
    bfs_impl(graph, root, true, Direction::Forward)
}

/// Runs the backward-in-time BFS from `root` (Section V): distances count
/// hops along reversed static edges and backward causal edges.
pub fn backward_bfs<G: EvolvingGraph>(graph: &G, root: TemporalNode) -> Result<DistanceMap> {
    bfs_impl(graph, root, false, Direction::Backward)
}

/// Backward BFS with parent recording.
pub fn backward_bfs_with_parents<G: EvolvingGraph>(
    graph: &G,
    root: TemporalNode,
) -> Result<DistanceMap> {
    bfs_impl(graph, root, true, Direction::Backward)
}

/// Validates that `root` is inside the graph and active.
pub fn check_root<G: EvolvingGraph>(graph: &G, root: TemporalNode) -> Result<()> {
    if graph.num_timestamps() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if root.node.index() >= graph.num_nodes() {
        return Err(GraphError::NodeOutOfRange {
            node: root.node,
            num_nodes: graph.num_nodes(),
        });
    }
    if root.time.index() >= graph.num_timestamps() {
        return Err(GraphError::TimeOutOfRange {
            time: root.time,
            num_timestamps: graph.num_timestamps(),
        });
    }
    if !graph.is_active(root.node, root.time) {
        return Err(GraphError::InactiveRoot { root });
    }
    Ok(())
}

fn bfs_impl<G: EvolvingGraph>(
    graph: &G,
    root: TemporalNode,
    with_parents: bool,
    direction: Direction,
) -> Result<DistanceMap> {
    check_root(graph, root)?;

    let mut reached = DistanceMap::new(
        graph.num_nodes(),
        graph.num_timestamps(),
        root,
        with_parents,
    );

    // `frontier` holds all temporal nodes at distance k-1; `next` collects
    // distance-k nodes, exactly as in the pseudocode of Algorithm 1.
    let mut frontier: Vec<TemporalNode> = vec![root];
    let mut next: Vec<TemporalNode> = Vec::new();
    let mut k: u32 = 1;

    while !frontier.is_empty() {
        next.clear();
        for &tn in &frontier {
            let visit = &mut |nbr: TemporalNode| {
                if reached.try_reach(nbr, k, tn) {
                    next.push(nbr);
                }
            };
            match direction {
                Direction::Forward => graph.for_each_forward_neighbor(tn, visit),
                Direction::Backward => graph.for_each_backward_neighbor(tn, visit),
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        k += 1;
    }
    Ok(reached)
}

/// Runs a *shared-frontier* multi-source BFS: one traversal seeded with every
/// source at distance 0, instead of one traversal per source.
///
/// For every temporal node the result records the distance to the *nearest*
/// source (`min_s d_s(v, t)`) together with which source that is; ties are
/// broken toward the smallest source index, deterministically, so the result
/// equals the per-source-minimum oracle built from independent single-source
/// runs. Total work is one BFS over the union of the per-source search
/// regions — `O(|E| + |V|)` regardless of the number of sources — where the
/// per-source loop costs `O(k · (|E| + |V|))` for `k` sources.
///
/// Duplicate sources are allowed (the earliest occurrence claims the node).
///
/// # Errors
/// Returns [`GraphError::NoSources`] for an empty source list and the usual
/// [`check_root`] errors for any invalid source.
pub fn multi_source_shared<G: EvolvingGraph>(
    graph: &G,
    sources: &[TemporalNode],
) -> Result<MultiSourceMap> {
    if sources.is_empty() {
        return Err(GraphError::NoSources);
    }
    for &s in sources {
        check_root(graph, s)?;
    }
    let num_nodes = graph.num_nodes();
    let size = num_nodes * graph.num_timestamps();

    // Packed claim keys: (distance << 32) | source_index, u64::MAX =
    // unreached. Taking the minimum key implements "nearest source, ties to
    // the smallest source index" in a single comparison.
    let mut key: Vec<u64> = vec![u64::MAX; size];
    let mut frontier: Vec<TemporalNode> = Vec::new();
    for (i, &s) in sources.iter().enumerate() {
        let slot = &mut key[s.flat_index(num_nodes)];
        if *slot == u64::MAX {
            frontier.push(s);
        }
        *slot = (*slot).min(i as u64);
    }

    let mut next: Vec<TemporalNode> = Vec::new();
    let mut level: u32 = 1;
    while !frontier.is_empty() {
        next.clear();
        for &tn in &frontier {
            // The attribution of `tn` settled while the previous level was
            // expanded, so children inherit the final (minimal) source index.
            let src = key[tn.flat_index(num_nodes)] & 0xFFFF_FFFF;
            let claim = (u64::from(level) << 32) | src;
            graph.for_each_forward_neighbor(tn, &mut |nbr| {
                let slot = &mut key[nbr.flat_index(num_nodes)];
                if *slot == u64::MAX {
                    *slot = claim;
                    next.push(nbr);
                } else if claim < *slot {
                    // Same level (levels are non-decreasing in discovery
                    // order), smaller source index: update the attribution
                    // without re-enqueueing.
                    *slot = claim;
                }
            });
        }
        std::mem::swap(&mut frontier, &mut next);
        level += 1;
    }
    Ok(MultiSourceMap::from_keys(
        num_nodes,
        graph.num_timestamps(),
        sources.to_vec(),
        &key,
    ))
}

/// Distance (Definition 6) from `from` to `to`, or `None` if `to` is not
/// reachable from `from`. Note that this notion is not symmetric: paths may
/// only move forward in time.
pub fn distance_between<G: EvolvingGraph>(
    graph: &G,
    from: TemporalNode,
    to: TemporalNode,
) -> Result<Option<u32>> {
    Ok(bfs(graph, from)?.distance(to))
}

/// Whether `to` is reachable from `from` (Definition 7).
pub fn is_reachable<G: EvolvingGraph>(
    graph: &G,
    from: TemporalNode,
    to: TemporalNode,
) -> Result<bool> {
    Ok(distance_between(graph, from, to)?.is_some())
}

/// The set of temporal nodes reachable from `root`, excluding the root
/// itself.
pub fn reachable_set<G: EvolvingGraph>(graph: &G, root: TemporalNode) -> Result<Vec<TemporalNode>> {
    let map = bfs(graph, root)?;
    Ok(map
        .reached()
        .into_iter()
        .filter(|&(tn, _)| tn != root)
        .map(|(tn, _)| tn)
        .collect())
}

/// Runs BFS from every active occurrence of `node` and returns, for each
/// start snapshot, the number of reached temporal nodes. A cheap proxy for
/// "how much influence does this node have if it acts at time t".
pub fn reach_profile<G: EvolvingGraph>(graph: &G, node: NodeId) -> Vec<(TimeIndex, usize)> {
    graph
        .active_times(node)
        .into_iter()
        .map(|t| {
            let count = bfs(graph, TemporalNode::new(node, t))
                .map(|m| m.num_reached() - 1)
                .unwrap_or(0);
            (t, count)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{introduction_game, paper_figure1, staircase};

    #[test]
    fn bfs_from_paper_root_1_t2_matches_figure3() {
        // Figure 3 traces BFS from (1, t2): frontier {(3,t2)} at k=1, then
        // {(3,t3)} at k=2, then termination.
        let g = paper_figure1();
        let map = bfs(&g, TemporalNode::from_raw(0, 1)).unwrap();
        assert_eq!(map.distance(TemporalNode::from_raw(0, 1)), Some(0));
        assert_eq!(map.distance(TemporalNode::from_raw(2, 1)), Some(1));
        assert_eq!(map.distance(TemporalNode::from_raw(2, 2)), Some(2));
        assert_eq!(map.num_reached(), 3);
        assert_eq!(map.max_distance(), 2);
        // t1 plays no part in the traversal.
        assert!(!map.is_reached(TemporalNode::from_raw(0, 0)));
        assert!(!map.is_reached(TemporalNode::from_raw(1, 0)));
    }

    #[test]
    fn bfs_from_paper_root_1_t1_reaches_everything_active() {
        let g = paper_figure1();
        let map = bfs(&g, TemporalNode::from_raw(0, 0)).unwrap();
        assert_eq!(map.distance(TemporalNode::from_raw(1, 0)), Some(1));
        assert_eq!(map.distance(TemporalNode::from_raw(0, 1)), Some(1));
        assert_eq!(map.distance(TemporalNode::from_raw(2, 1)), Some(2));
        assert_eq!(map.distance(TemporalNode::from_raw(1, 2)), Some(2));
        assert_eq!(map.distance(TemporalNode::from_raw(2, 2)), Some(3));
        assert_eq!(map.num_reached(), 6);
    }

    #[test]
    fn bfs_rejects_inactive_root() {
        let g = paper_figure1();
        let err = bfs(&g, TemporalNode::from_raw(2, 0)).unwrap_err();
        assert!(matches!(err, GraphError::InactiveRoot { .. }));
    }

    #[test]
    fn bfs_rejects_out_of_range_roots() {
        let g = paper_figure1();
        assert!(matches!(
            bfs(&g, TemporalNode::from_raw(9, 0)).unwrap_err(),
            GraphError::NodeOutOfRange { .. }
        ));
        assert!(matches!(
            bfs(&g, TemporalNode::from_raw(0, 9)).unwrap_err(),
            GraphError::TimeOutOfRange { .. }
        ));
    }

    #[test]
    fn shortest_path_reconstruction_is_a_valid_temporal_path() {
        let g = paper_figure1();
        let map = bfs_with_parents(&g, TemporalNode::from_raw(0, 0)).unwrap();
        let path = map.path_to(TemporalNode::from_raw(2, 2)).unwrap();
        assert_eq!(path.len(), 4); // distance 3 => 4 temporal nodes
        assert_eq!(path[0], TemporalNode::from_raw(0, 0));
        assert_eq!(path[3], TemporalNode::from_raw(2, 2));
        // Times never decrease along the path.
        for w in path.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn introduction_game_reachability_depends_on_event_order() {
        let good = introduction_game(true);
        let bad = introduction_game(false);
        // Player 3 at the last time step hears message `a` iff 1 talked first.
        assert!(is_reachable(
            &good,
            TemporalNode::from_raw(0, 0),
            TemporalNode::from_raw(2, 1)
        )
        .unwrap());
        // In the bad ordering, node 0 is only active at t2 and node 2 is not
        // active at any later time, so (3, ·) is unreachable from player 1.
        let map = bfs(&bad, TemporalNode::from_raw(0, 1)).unwrap();
        assert!(!map.reached_node_ids().contains(&NodeId(2)));
    }

    #[test]
    fn staircase_distances_alternate_static_and_causal_hops() {
        let n = 6;
        let g = staircase(n);
        let map = bfs(&g, TemporalNode::from_raw(0, 0)).unwrap();
        // Reaching node i at snapshot i-1 takes i static hops plus i-1 causal
        // hops = 2i - 1.
        for i in 1..n as u32 {
            let tn = TemporalNode::from_raw(i, i - 1);
            assert_eq!(map.distance(tn), Some(2 * i - 1), "node {i}");
        }
    }

    #[test]
    fn distance_is_not_symmetric() {
        let g = paper_figure1();
        let a = TemporalNode::from_raw(0, 0);
        let b = TemporalNode::from_raw(2, 2);
        assert_eq!(distance_between(&g, a, b).unwrap(), Some(3));
        // The reverse direction is not even a valid query from an active root
        // going backward in forward-BFS terms: (3,t3) has no forward
        // neighbors, so nothing but itself is reached.
        assert_eq!(distance_between(&g, b, a).unwrap(), None);
    }

    #[test]
    fn backward_bfs_inverts_forward_reachability() {
        let g = paper_figure1();
        let fwd = bfs(&g, TemporalNode::from_raw(0, 0)).unwrap();
        let bwd = backward_bfs(&g, TemporalNode::from_raw(2, 2)).unwrap();
        // (3,t3) is forward-reachable from (1,t1) iff (1,t1) is
        // backward-reachable from (3,t3).
        assert!(fwd.is_reached(TemporalNode::from_raw(2, 2)));
        assert!(bwd.is_reached(TemporalNode::from_raw(0, 0)));
        // And the distances agree because every temporal path reverses.
        assert_eq!(
            fwd.distance(TemporalNode::from_raw(2, 2)),
            bwd.distance(TemporalNode::from_raw(0, 0))
        );
    }

    #[test]
    fn reachable_set_excludes_root() {
        let g = paper_figure1();
        let set = reachable_set(&g, TemporalNode::from_raw(0, 0)).unwrap();
        assert_eq!(set.len(), 5);
        assert!(!set.contains(&TemporalNode::from_raw(0, 0)));
    }

    #[test]
    fn reach_profile_reports_one_entry_per_active_time() {
        let g = paper_figure1();
        let profile = reach_profile(&g, NodeId(0));
        assert_eq!(profile.len(), 2);
        assert_eq!(profile[0], (TimeIndex(0), 5));
        assert_eq!(profile[1], (TimeIndex(1), 2));
    }

    #[test]
    fn bfs_terminates_on_cyclic_snapshots() {
        // Theorem 3's cyclic case: the visited check prevents revisiting.
        let g = crate::examples::cyclic_example();
        let map = bfs(&g, TemporalNode::from_raw(0, 0)).unwrap();
        assert!(map.num_reached() >= 3);
    }

    #[test]
    fn shared_frontier_matches_per_source_minimum_on_paper_example() {
        let g = paper_figure1();
        let sources = g.active_nodes();
        let shared = multi_source_shared(&g, &sources).unwrap();
        let per_source: Vec<_> = sources.iter().map(|&s| bfs(&g, s).unwrap()).collect();
        for tn in g.active_nodes() {
            let oracle = per_source
                .iter()
                .enumerate()
                .filter_map(|(i, m)| m.distance(tn).map(|d| (d, i)))
                .min();
            assert_eq!(
                shared.distance(tn),
                oracle.map(|(d, _)| d),
                "distance at {tn:?}"
            );
            assert_eq!(
                shared.nearest_source_index(tn),
                oracle.map(|(_, i)| i),
                "attribution at {tn:?}"
            );
        }
    }

    #[test]
    fn shared_frontier_handles_duplicate_sources() {
        let g = paper_figure1();
        let a = TemporalNode::from_raw(0, 0);
        let shared = multi_source_shared(&g, &[a, a]).unwrap();
        let single = bfs(&g, a).unwrap();
        assert_eq!(shared.num_reached(), single.num_reached());
        // The first occurrence wins the attribution everywhere.
        for (tn, _, src) in shared.reached_with_sources() {
            assert_eq!(src, 0, "at {tn:?}");
        }
    }

    #[test]
    fn shared_frontier_rejects_bad_inputs() {
        let g = paper_figure1();
        assert!(matches!(
            multi_source_shared(&g, &[]).unwrap_err(),
            GraphError::NoSources
        ));
        assert!(matches!(
            multi_source_shared(&g, &[TemporalNode::from_raw(2, 0)]).unwrap_err(),
            GraphError::InactiveRoot { .. }
        ));
    }

    #[test]
    fn undirected_bfs_traverses_edges_both_ways() {
        let mut g = crate::adjacency::AdjacencyListGraph::undirected_with_unit_times(3, 2);
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), TimeIndex(1)).unwrap();
        // Start from node 1's side of the first edge; the undirected static
        // edge lets us hop to node 0 too.
        let map = bfs(&g, TemporalNode::from_raw(1, 0)).unwrap();
        assert_eq!(map.distance(TemporalNode::from_raw(0, 0)), Some(1));
        assert_eq!(map.distance(TemporalNode::from_raw(1, 1)), Some(1));
        assert_eq!(map.distance(TemporalNode::from_raw(2, 1)), Some(2));
    }
}
