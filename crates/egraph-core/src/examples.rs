//! Constructors for the worked examples used throughout the paper.
//!
//! Keeping the examples in the library (rather than only in tests) lets the
//! test suite, the examples and the benchmark harness all agree on exactly
//! which graph "Figure 1" refers to.

use crate::adjacency::AdjacencyListGraph;
use crate::ids::{NodeId, TimeIndex};

/// The evolving directed graph of Figure 1 (used through Figures 2–4 and the
/// Section III matrix examples).
///
/// Three nodes and three snapshots with one directed edge per snapshot:
///
/// * `1 → 2` at `t1`
/// * `1 → 3` at `t2`
/// * `2 → 3` at `t3`
///
/// The paper numbers nodes from 1 and times from `t1`; this crate uses
/// zero-based identifiers, so paper node `k` is [`NodeId`]`(k-1)` and paper
/// time `t_k` is [`TimeIndex`]`(k-1)`.
pub fn paper_figure1() -> AdjacencyListGraph {
    let mut g = AdjacencyListGraph::directed(3, vec![1, 2, 3]).expect("valid timestamps");
    g.add_edge(NodeId(0), NodeId(1), TimeIndex(0))
        .expect("edge 1->2 at t1");
    g.add_edge(NodeId(0), NodeId(2), TimeIndex(1))
        .expect("edge 1->3 at t2");
    g.add_edge(NodeId(1), NodeId(2), TimeIndex(2))
        .expect("edge 2->3 at t3");
    g
}

/// The message-passing game of the paper's introduction, encoded as an
/// evolving graph: three players, player 1 talks to player 2 at `t1`, then
/// player 2 talks to player 3 at `t2`.
///
/// Player 3 can collect message `a` precisely because a temporal path
/// `1 → 2 → 3` exists; reversing the two events destroys it.
pub fn introduction_game(one_talks_first: bool) -> AdjacencyListGraph {
    let mut g = AdjacencyListGraph::directed(3, vec![1, 2]).expect("valid timestamps");
    if one_talks_first {
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), TimeIndex(1)).unwrap();
    } else {
        g.add_edge(NodeId(1), NodeId(2), TimeIndex(0)).unwrap();
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(1)).unwrap();
    }
    g
}

/// A small evolving graph with a cycle inside one snapshot, used to exercise
/// the cyclic branch of the termination proof (Theorem 3).
pub fn cyclic_example() -> AdjacencyListGraph {
    let mut g = AdjacencyListGraph::directed(3, vec![0, 1]).expect("valid timestamps");
    g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
    g.add_edge(NodeId(1), NodeId(2), TimeIndex(0)).unwrap();
    g.add_edge(NodeId(2), NodeId(0), TimeIndex(0)).unwrap();
    g.add_edge(NodeId(0), NodeId(2), TimeIndex(1)).unwrap();
    g
}

/// A longer chain example: node `i` connects to node `i+1` at snapshot `i`,
/// so the only temporal path from `(0, t0)` to `(n-1, t_{n-2})` alternates
/// static and causal edges. Useful for distance and path-counting tests with
/// a known closed form.
pub fn staircase(n: usize) -> AdjacencyListGraph {
    assert!(n >= 2, "staircase needs at least two nodes");
    let mut g = AdjacencyListGraph::directed_with_unit_times(n, n - 1);
    for i in 0..n - 1 {
        g.add_edge(
            NodeId::from_index(i),
            NodeId::from_index(i + 1),
            TimeIndex::from_index(i),
        )
        .unwrap();
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EvolvingGraph;

    #[test]
    fn figure1_has_three_edges_and_six_active_nodes() {
        let g = paper_figure1();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_timestamps(), 3);
        assert_eq!(g.num_static_edges(), 3);
        assert_eq!(g.num_active_nodes(), 6);
        assert!(g.is_directed());
    }

    #[test]
    fn figure1_inactive_nodes_match_paper() {
        let g = paper_figure1();
        // (3, t1), (2, t2), (1, t3) are the inactive temporal nodes.
        assert!(!g.is_active(NodeId(2), TimeIndex(0)));
        assert!(!g.is_active(NodeId(1), TimeIndex(1)));
        assert!(!g.is_active(NodeId(0), TimeIndex(2)));
    }

    #[test]
    fn introduction_game_order_matters() {
        let good = introduction_game(true);
        let bad = introduction_game(false);
        assert_eq!(good.num_static_edges(), 2);
        assert_eq!(bad.num_static_edges(), 2);
        // In the "bad" ordering, player 2 only talks to 3 *before* hearing
        // from player 1 — there is no static edge from 1 at t1.
        assert!(good.has_static_edge(NodeId(0), NodeId(1), TimeIndex(0)));
        assert!(bad.has_static_edge(NodeId(1), NodeId(2), TimeIndex(0)));
    }

    #[test]
    fn staircase_shape() {
        let g = staircase(5);
        assert_eq!(g.num_static_edges(), 4);
        assert_eq!(g.num_timestamps(), 4);
        assert!(g.has_static_edge(NodeId(2), NodeId(3), TimeIndex(2)));
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn staircase_rejects_degenerate_size() {
        let _ = staircase(1);
    }

    #[test]
    fn cyclic_example_contains_a_cycle_at_t0() {
        let g = cyclic_example();
        assert!(g.has_static_edge(NodeId(2), NodeId(0), TimeIndex(0)));
        assert_eq!(g.num_static_edges(), 4);
    }
}
