//! Reachability structure of an evolving graph: out-components, in-components
//! and weakly connected temporal components.
//!
//! Temporal reachability is not symmetric (paths cannot go backward in time),
//! so the usual notion of a connected component splits into three useful
//! relaxations, all built directly on the BFS of Algorithm 1:
//!
//! * the **out-component** of an active temporal node — everything it can
//!   reach (its forward cone);
//! * the **in-component** — everything that can reach it (its backward cone);
//! * **weak components** — the equivalence classes of active temporal nodes
//!   under "connected when edge directions and time ordering are ignored",
//!   which is what partitions a sparse evolving graph into independent
//!   clusters that no traversal can cross.
//!
//! Weak components are computed with a union–find over the static and causal
//! adjacencies, so they cost `O((|Ẽ| + |V|) α)` rather than one BFS per node.

use crate::bfs::{backward_bfs, bfs};
use crate::graph::EvolvingGraph;
use crate::ids::{NodeId, TemporalNode, TimeIndex};

/// The forward cone (out-component) of an active temporal node, including the
/// node itself. Returns an empty vector for inactive roots.
pub fn out_component<G: EvolvingGraph>(graph: &G, root: TemporalNode) -> Vec<TemporalNode> {
    bfs(graph, root)
        .map(|m| m.reached().into_iter().map(|(tn, _)| tn).collect())
        .unwrap_or_default()
}

/// The backward cone (in-component) of an active temporal node, including the
/// node itself. Returns an empty vector for inactive roots.
pub fn in_component<G: EvolvingGraph>(graph: &G, root: TemporalNode) -> Vec<TemporalNode> {
    backward_bfs(graph, root)
        .map(|m| m.reached().into_iter().map(|(tn, _)| tn).collect())
        .unwrap_or_default()
}

/// A partition of the active temporal nodes into weakly connected components.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WeakComponents {
    /// The components, each a sorted list of active temporal nodes; sorted by
    /// decreasing size.
    pub components: Vec<Vec<TemporalNode>>,
}

impl WeakComponents {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether there are no active nodes at all.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Size of the largest component (0 if none).
    pub fn largest_size(&self) -> usize {
        self.components.first().map(|c| c.len()).unwrap_or(0)
    }

    /// The component containing a given temporal node, if it is active.
    pub fn component_of(&self, tn: TemporalNode) -> Option<&[TemporalNode]> {
        self.components
            .iter()
            .find(|c| c.binary_search(&tn).is_ok())
            .map(|c| c.as_slice())
    }
}

/// Union–find with path compression and union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }
}

/// Computes the weakly connected components over the active temporal nodes,
/// joining along static edges (within a snapshot) and along consecutive
/// active occurrences of the same node (which is enough: causal edges to
/// later occurrences are unions of consecutive ones).
pub fn weak_components<G: EvolvingGraph>(graph: &G) -> WeakComponents {
    let n = graph.num_nodes();
    let n_t = graph.num_timestamps();
    let mut uf = UnionFind::new(n * n_t);
    let flat = |tn: TemporalNode| tn.flat_index(n) as u32;

    // Static edges.
    for t in 0..n_t {
        let ti = TimeIndex::from_index(t);
        for v in 0..n {
            let v_id = NodeId::from_index(v);
            graph.for_each_static_out(v_id, ti, &mut |w| {
                uf.union(
                    flat(TemporalNode::new(v_id, ti)),
                    flat(TemporalNode::new(w, ti)),
                );
            });
        }
    }
    // Consecutive active occurrences of each node.
    for v in 0..n {
        let v_id = NodeId::from_index(v);
        let times = graph.active_times(v_id);
        for w in times.windows(2) {
            uf.union(
                flat(TemporalNode::new(v_id, w[0])),
                flat(TemporalNode::new(v_id, w[1])),
            );
        }
    }

    // Group active nodes by their representative.
    let mut groups: std::collections::HashMap<u32, Vec<TemporalNode>> =
        std::collections::HashMap::new();
    for tn in graph.active_nodes() {
        let rep = uf.find(flat(tn));
        groups.entry(rep).or_default().push(tn);
    }
    let mut components: Vec<Vec<TemporalNode>> = groups.into_values().collect();
    for c in &mut components {
        c.sort();
    }
    components.sort_by_key(|c| (std::cmp::Reverse(c.len()), c.first().copied()));
    WeakComponents { components }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyListGraph;
    use crate::examples::paper_figure1;

    fn tn(v: u32, t: u32) -> TemporalNode {
        TemporalNode::from_raw(v, t)
    }

    #[test]
    fn paper_example_is_one_weak_component() {
        let g = paper_figure1();
        let wc = weak_components(&g);
        assert_eq!(wc.len(), 1);
        assert_eq!(wc.largest_size(), 6);
        assert!(wc.component_of(tn(0, 0)).is_some());
        assert!(wc.component_of(tn(2, 0)).is_none()); // inactive
    }

    #[test]
    fn out_and_in_components_match_bfs() {
        let g = paper_figure1();
        let out = out_component(&g, tn(0, 0));
        assert_eq!(out.len(), 6);
        let into = in_component(&g, tn(2, 2));
        assert_eq!(into.len(), 6);
        // Inactive roots have empty cones.
        assert!(out_component(&g, tn(2, 0)).is_empty());
        assert!(in_component(&g, tn(2, 0)).is_empty());
    }

    #[test]
    fn disconnected_clusters_form_separate_components() {
        // Cluster A: nodes 0,1 at t0; cluster B: nodes 2,3 at t1. No overlap.
        let mut g = AdjacencyListGraph::directed_with_unit_times(4, 2);
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
        g.add_edge(NodeId(2), NodeId(3), TimeIndex(1)).unwrap();
        let wc = weak_components(&g);
        assert_eq!(wc.len(), 2);
        assert_eq!(wc.largest_size(), 2);
        // The two clusters are indeed mutually unreachable.
        assert!(!out_component(&g, tn(0, 0)).contains(&tn(2, 1)));
        assert!(!out_component(&g, tn(2, 1)).contains(&tn(0, 0)));
    }

    #[test]
    fn causal_continuity_joins_occurrences_of_the_same_node() {
        // Node 1 bridges two otherwise separate snapshots.
        let mut g = AdjacencyListGraph::directed_with_unit_times(4, 2);
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), TimeIndex(1)).unwrap();
        let wc = weak_components(&g);
        assert_eq!(wc.len(), 1);
        assert_eq!(wc.largest_size(), 4);
    }

    #[test]
    fn out_components_never_cross_weak_components() {
        let mut g = AdjacencyListGraph::directed_with_unit_times(6, 3);
        g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
        g.add_edge(NodeId(1), NodeId(2), TimeIndex(1)).unwrap();
        g.add_edge(NodeId(3), NodeId(4), TimeIndex(0)).unwrap();
        g.add_edge(NodeId(4), NodeId(5), TimeIndex(2)).unwrap();
        let wc = weak_components(&g);
        assert_eq!(wc.len(), 2);
        for &root in &g.active_nodes() {
            let comp = wc.component_of(root).unwrap();
            for reached in out_component(&g, root) {
                assert!(comp.contains(&reached));
            }
        }
    }
}
