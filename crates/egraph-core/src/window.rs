//! [`TimeWindowView`]: an evolving graph restricted to a contiguous range of
//! snapshots.
//!
//! The paper observes (Section II-C) that "all `G[t]` with time stamps
//! `t < t′` for a starting node `(v, t′)` are irrelevant to the BFS
//! traversal", so BFS may always be treated as rooted at the earliest
//! snapshot. A time window makes that observation a first-class object: a BFS
//! on the window `[t_lo, t_hi]` sees only the snapshots inside the window,
//! which is also the natural way to ask "who was influenced between 2010 and
//! 2014" in the citation application.

use crate::error::{GraphError, Result};
use crate::graph::EvolvingGraph;
use crate::ids::{NodeId, TemporalNode, TimeIndex, Timestamp};

/// A contiguous-in-time view `[start, end]` (inclusive) over an evolving
/// graph.
#[derive(Clone, Copy, Debug)]
pub struct TimeWindowView<G> {
    inner: G,
    start: TimeIndex,
    end: TimeIndex,
}

impl<G: EvolvingGraph> TimeWindowView<G> {
    /// Restricts `inner` to snapshot indices `start..=end`.
    pub fn new(inner: G, start: TimeIndex, end: TimeIndex) -> Result<Self> {
        if end.index() >= inner.num_timestamps() || start > end {
            return Err(GraphError::TimeOutOfRange {
                time: end,
                num_timestamps: inner.num_timestamps(),
            });
        }
        Ok(TimeWindowView { inner, start, end })
    }

    /// Restricts `inner` to the suffix starting at `start` — the "drop the
    /// irrelevant prefix" transformation of Section II-C.
    pub fn from_start(inner: G, start: TimeIndex) -> Result<Self> {
        if inner.num_timestamps() == 0 {
            return Err(GraphError::EmptyGraph);
        }
        let end = TimeIndex::from_index(inner.num_timestamps() - 1);
        Self::new(inner, start, end)
    }

    /// The underlying graph.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    /// First snapshot (in the underlying graph's indexing) of the window.
    pub fn start(&self) -> TimeIndex {
        self.start
    }

    /// Last snapshot (inclusive) of the window.
    pub fn end(&self) -> TimeIndex {
        self.end
    }

    /// Maps a window-relative snapshot index to the underlying index.
    #[inline]
    pub fn to_inner_time(&self, t: TimeIndex) -> TimeIndex {
        TimeIndex::from_index(self.start.index() + t.index())
    }

    /// Maps an underlying snapshot index into the window, if it lies inside.
    #[inline]
    pub fn to_window_time(&self, t: TimeIndex) -> Option<TimeIndex> {
        if t >= self.start && t <= self.end {
            Some(TimeIndex::from_index(t.index() - self.start.index()))
        } else {
            None
        }
    }

    /// Maps a window-relative temporal node to the underlying graph.
    #[inline]
    pub fn to_inner_temporal(&self, tn: TemporalNode) -> TemporalNode {
        TemporalNode::new(tn.node, self.to_inner_time(tn.time))
    }

    /// Maps an underlying temporal node into the window, if its snapshot lies
    /// inside.
    #[inline]
    pub fn to_window_temporal(&self, tn: TemporalNode) -> Option<TemporalNode> {
        self.to_window_time(tn.time)
            .map(|t| TemporalNode::new(tn.node, t))
    }
}

impl<G: EvolvingGraph> EvolvingGraph for TimeWindowView<G> {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn num_timestamps(&self) -> usize {
        self.end.index() - self.start.index() + 1
    }

    fn timestamp(&self, t: TimeIndex) -> Timestamp {
        self.inner.timestamp(self.to_inner_time(t))
    }

    fn is_directed(&self) -> bool {
        self.inner.is_directed()
    }

    fn num_static_edges(&self) -> usize {
        // Count only edges whose snapshot lies inside the window.
        let mut count = 0usize;
        for t in self.start.index()..=self.end.index() {
            let t = TimeIndex::from_index(t);
            for v in 0..self.inner.num_nodes() {
                let v = NodeId::from_index(v);
                self.inner.for_each_static_out(v, t, &mut |w| {
                    if self.inner.is_directed() || v < w {
                        count += 1;
                    }
                });
            }
        }
        count
    }

    fn for_each_static_out(&self, v: NodeId, t: TimeIndex, f: &mut dyn FnMut(NodeId)) {
        self.inner.for_each_static_out(v, self.to_inner_time(t), f)
    }

    fn for_each_static_in(&self, v: NodeId, t: TimeIndex, f: &mut dyn FnMut(NodeId)) {
        self.inner.for_each_static_in(v, self.to_inner_time(t), f)
    }

    fn for_each_active_time(&self, v: NodeId, f: &mut dyn FnMut(TimeIndex)) {
        let start = self.start;
        let end = self.end;
        self.inner.for_each_active_time(v, &mut |t| {
            if t >= start && t <= end {
                f(TimeIndex::from_index(t.index() - start.index()));
            }
        });
    }

    fn is_active(&self, v: NodeId, t: TimeIndex) -> bool {
        self.inner.is_active(v, self.to_inner_time(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs;
    use crate::examples::paper_figure1;

    #[test]
    fn rejects_invalid_windows() {
        let g = paper_figure1();
        assert!(TimeWindowView::new(&g, TimeIndex(0), TimeIndex(9)).is_err());
        assert!(TimeWindowView::new(&g, TimeIndex(2), TimeIndex(1)).is_err());
    }

    #[test]
    fn window_remaps_times_and_labels() {
        let g = paper_figure1();
        let w = TimeWindowView::new(&g, TimeIndex(1), TimeIndex(2)).unwrap();
        assert_eq!(w.num_timestamps(), 2);
        assert_eq!(w.timestamps(), vec![2, 3]);
        assert_eq!(w.to_inner_time(TimeIndex(0)), TimeIndex(1));
        assert_eq!(w.to_window_time(TimeIndex(2)), Some(TimeIndex(1)));
        assert_eq!(w.to_window_time(TimeIndex(0)), None);
    }

    #[test]
    fn window_counts_only_inside_edges() {
        let g = paper_figure1();
        let w = TimeWindowView::new(&g, TimeIndex(1), TimeIndex(2)).unwrap();
        assert_eq!(w.num_static_edges(), 2);
        let w0 = TimeWindowView::new(&g, TimeIndex(0), TimeIndex(0)).unwrap();
        assert_eq!(w0.num_static_edges(), 1);
    }

    #[test]
    fn suffix_window_reproduces_section_iic_observation() {
        // BFS from (1, t2) on the full graph ignores t1; BFS from the same
        // node on the suffix window [t2, t3] must give identical distances.
        let g = paper_figure1();
        let full = bfs(&g, TemporalNode::from_raw(0, 1)).unwrap();
        let w = TimeWindowView::from_start(&g, TimeIndex(1)).unwrap();
        let windowed = bfs(&w, TemporalNode::from_raw(0, 0)).unwrap();
        for (tn, d) in windowed.reached() {
            let inner = w.to_inner_temporal(tn);
            assert_eq!(full.distance(inner), Some(d));
        }
        assert_eq!(full.num_reached(), windowed.num_reached());
    }

    #[test]
    fn activeness_respects_window_bounds() {
        let g = paper_figure1();
        let w = TimeWindowView::new(&g, TimeIndex(1), TimeIndex(2)).unwrap();
        // Node 1 (paper node 2) is active at t1 and t3; inside the window only
        // the t3 occurrence remains, at window index 1.
        assert_eq!(w.active_times(NodeId(1)), vec![TimeIndex(1)]);
        assert!(!w.is_active(NodeId(1), TimeIndex(0)));
    }
}
