//! Error types shared across the evolving-graph crates.

use crate::ids::{NodeId, TemporalNode, TimeIndex, Timestamp};
use core::fmt;

/// Errors produced while constructing or querying evolving graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node identifier lies outside the node universe `0..num_nodes`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The size of the node universe.
        num_nodes: usize,
    },
    /// A snapshot index lies outside `0..num_timestamps`.
    TimeOutOfRange {
        /// The offending snapshot index.
        time: TimeIndex,
        /// The number of snapshots.
        num_timestamps: usize,
    },
    /// A timestamp label was not found in the snapshot sequence.
    UnknownTimestamp {
        /// The label that was looked up.
        timestamp: Timestamp,
    },
    /// Timestamp labels handed to a constructor were not strictly increasing.
    UnsortedTimestamps {
        /// Position at which the ordering was violated.
        position: usize,
    },
    /// A self-loop `(v, v)` was inserted; the paper's activeness notion
    /// (Definition 3) requires an edge to a *different* node, so self-loops
    /// are rejected rather than silently ignored.
    SelfLoop {
        /// The node carrying the rejected self-loop.
        node: NodeId,
        /// The snapshot at which insertion was attempted.
        time: TimeIndex,
    },
    /// A traversal was rooted at an inactive temporal node. Definition 4
    /// forces every temporal path from an inactive end point to be empty, so
    /// the search result would be trivially empty; surfacing this as an error
    /// catches a common caller mistake.
    InactiveRoot {
        /// The rejected root.
        root: TemporalNode,
    },
    /// The operation requires at least one snapshot.
    EmptyGraph,
    /// A search was issued without any source temporal node.
    NoSources,
    /// A search window resolved to an empty snapshot range.
    EmptyWindow,
    /// A search source lies outside the requested time window.
    OutsideWindow {
        /// The source's snapshot index.
        time: TimeIndex,
        /// First snapshot of the window (inclusive).
        start: TimeIndex,
        /// Last snapshot of the window (inclusive).
        end: TimeIndex,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (num_nodes = {num_nodes})")
            }
            GraphError::TimeOutOfRange {
                time,
                num_timestamps,
            } => write!(
                f,
                "snapshot index {time} out of range (num_timestamps = {num_timestamps})"
            ),
            GraphError::UnknownTimestamp { timestamp } => {
                write!(f, "timestamp label {timestamp} not present in the graph")
            }
            GraphError::UnsortedTimestamps { position } => write!(
                f,
                "timestamp labels must be strictly increasing (violated at position {position})"
            ),
            GraphError::SelfLoop { node, time } => {
                write!(f, "self-loop on node {node} at snapshot {time} rejected")
            }
            GraphError::InactiveRoot { root } => {
                write!(f, "BFS root {root:?} is not an active temporal node")
            }
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty evolving graph"),
            GraphError::NoSources => write!(f, "search requires at least one source temporal node"),
            GraphError::EmptyWindow => write!(f, "search window contains no snapshots"),
            GraphError::OutsideWindow { time, start, end } => write!(
                f,
                "source snapshot {time} lies outside the window [{start}, {end}]"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_fields() {
        let e = GraphError::NodeOutOfRange {
            node: NodeId(9),
            num_nodes: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));

        let e = GraphError::SelfLoop {
            node: NodeId(2),
            time: TimeIndex(1),
        };
        assert!(e.to_string().contains("self-loop"));

        let e = GraphError::InactiveRoot {
            root: TemporalNode::from_raw(1, 0),
        };
        assert!(e.to_string().contains("not an active"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<GraphError>();
    }
}
