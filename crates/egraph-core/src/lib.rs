//! # egraph-core
//!
//! Evolving-graph data structures and breadth-first search over temporal
//! paths — a from-scratch Rust reproduction of the core contribution of
//! *"The Right Way to Search Evolving Graphs"* (Chen & Zhang, IPPS 2016).
//!
//! An **evolving graph** is a time-ordered sequence of static graphs
//! `G_n = ⟨G[1], …, G[n]⟩`. Searching it correctly requires tracking
//!
//! * **active nodes** — a temporal node `(v, t)` is active iff it has an
//!   incident edge at snapshot `t` (Definition 3);
//! * **temporal paths** — sequences of active temporal nodes that advance
//!   through static edges (same snapshot) or **causal edges** (same node,
//!   later snapshot) and never move backward in time (Definition 4);
//! * the **forward neighbor** relation combining both edge kinds
//!   (Definition 5).
//!
//! The headline algorithm is [`bfs::bfs`] — Algorithm 1 of the paper — which
//! computes distances over temporal paths in `O(|E| + |V|)` time for the
//! adjacency-list representation ([`adjacency::AdjacencyListGraph`]).
//!
//! This crate is the *engine room*: it owns the graph representations, the
//! traversal engines and the view adaptors. Applications usually query
//! through the unified `Search` builder of the `egraph-query` crate, which
//! fronts this crate's serial and parallel engines (plus `egraph-matrix`'s
//! algebraic engine) behind one fluent entry point; the free functions below
//! stay available for code that wants to talk to an engine directly.
//!
//! ## Quick example
//!
//! Build the 3-node example of the paper's Figure 1 (1 → 2 at t1, 1 → 3 at
//! t2, 2 → 3 at t3) and search it with Algorithm 1:
//!
//! ```
//! use egraph_core::prelude::*;
//!
//! let mut g = AdjacencyListGraph::directed(3, vec![1, 2, 3]).unwrap();
//! g.add_edge(NodeId(0), NodeId(1), TimeIndex(0)).unwrap();
//! g.add_edge(NodeId(0), NodeId(2), TimeIndex(1)).unwrap();
//! g.add_edge(NodeId(1), NodeId(2), TimeIndex(2)).unwrap();
//!
//! let reached = bfs(&g, TemporalNode::from_raw(0, 0)).unwrap();
//! // (3, t3) is three hops away: one static hop and two causal/static hops.
//! assert_eq!(reached.distance(TemporalNode::from_raw(2, 2)), Some(3));
//! ```
//!
//! The same query through the builder (from the `egraph-query` crate) reads
//! `Search::from(TemporalNode::from_raw(0, 0)).run(&g)` and can switch to
//! the parallel or algebraic engine, a time window, or backward traversal
//! without changing the call shape.
//!
//! ## Module overview
//!
//! | module | contents |
//! |---|---|
//! | [`ids`] | [`ids::NodeId`], [`ids::TimeIndex`], [`ids::TemporalNode`], edge types |
//! | [`graph`] | the [`graph::EvolvingGraph`] trait |
//! | [`adjacency`] | adjacency-list representation (incremental) |
//! | [`csr`] | CSR-flattened representation (contiguous serve path) |
//! | [`snapshots`] | snapshot-sequence representation |
//! | [`mod@bfs`] | Algorithm 1 (serial), backward BFS, shared-frontier multi-source, reachability |
//! | [`mod@par_bfs`] | frontier-parallel BFS and multi-source BFS (rayon) |
//! | [`paths`] | temporal-path validation, enumeration, walk counting |
//! | [`resume`] | resumable BFS/foremost state for incremental re-search |
//! | [`static_equiv`] | the equivalent static graph of Theorem 1 |
//! | [`reverse`], [`window`] | time-reversed and time-windowed views |
//! | [`examples`] | the paper's worked examples |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adjacency;
pub mod bfs;
pub mod components;
pub mod csr;
pub mod distance;
pub mod error;
pub mod examples;
pub mod foremost;
pub mod graph;
pub mod ids;
pub mod instrument;
pub mod metrics;
pub mod par_bfs;
pub mod paths;
pub mod resume;
pub mod reverse;
pub mod snapshots;
pub mod static_equiv;
pub mod static_graph;
pub mod window;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::adjacency::AdjacencyListGraph;
    pub use crate::bfs::{
        backward_bfs, backward_bfs_with_parents, bfs, bfs_with_parents, distance_between,
        is_reachable, multi_source_shared, reachable_set, Direction,
    };
    pub use crate::components::{in_component, out_component, weak_components, WeakComponents};
    pub use crate::csr::{CsrAdjacency, CsrParts};
    pub use crate::distance::{DistanceMap, MultiSourceMap};
    pub use crate::error::{GraphError, Result};
    pub use crate::foremost::{earliest_arrival, temporal_distance_steps, ForemostResult};
    pub use crate::graph::EvolvingGraph;
    pub use crate::ids::{CausalEdge, NodeId, StaticEdge, TemporalNode, TimeIndex, Timestamp};
    pub use crate::instrument::{CountingView, TraversalCounters};
    pub use crate::metrics::{eccentricity, reach_counts, GraphMetrics};
    pub use crate::par_bfs::{multi_source_bfs, par_bfs, par_multi_source_shared};
    pub use crate::paths::{enumerate_paths, is_temporal_path, walk_count_vector};
    pub use crate::resume::{ResumableBfs, ResumableForemost, ResumableShared, StableCoreResettle};
    pub use crate::reverse::ReversedView;
    pub use crate::snapshots::{Snapshot, SnapshotSequence};
    pub use crate::static_equiv::EquivalentStaticGraph;
    pub use crate::static_graph::StaticGraph;
    pub use crate::window::TimeWindowView;
}

pub use adjacency::AdjacencyListGraph;
pub use bfs::{backward_bfs, bfs, bfs_with_parents, multi_source_shared};
pub use csr::CsrAdjacency;
pub use distance::{DistanceMap, MultiSourceMap};
pub use error::{GraphError, Result};
pub use graph::EvolvingGraph;
pub use ids::{NodeId, TemporalNode, TimeIndex, Timestamp};
pub use par_bfs::par_bfs;
pub use snapshots::SnapshotSequence;
pub use static_equiv::EquivalentStaticGraph;
pub use static_graph::StaticGraph;
