//! Identifier types for nodes, time stamps and temporal nodes.
//!
//! The paper (Definitions 1–2) works with an evolving graph
//! `G_n = ⟨G[1], …, G[n]⟩` whose snapshots carry time labels `t_1 < … < t_n`,
//! and with *temporal nodes* `(v, t)` — a node paired with the time at which
//! it is observed. Internally we separate the two roles a "time" plays:
//!
//! * [`Timestamp`] is the user-facing time *label* (publication year, epoch
//!   number,…). Labels only need to be totally ordered.
//! * [`TimeIndex`] is the position of a snapshot inside the ordered snapshot
//!   sequence. All algorithms operate on indices so that the hot loops use
//!   dense `usize` arithmetic instead of label lookups.

use core::fmt;

/// A node identifier inside the node universe `0..num_nodes`.
///
/// Node identifiers are dense small integers; this mirrors the
/// `IntEvolvingGraph` type of the reference Julia implementation and keeps
/// per-node state addressable by plain indexing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "node index {i} exceeds u32::MAX");
        NodeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

/// Position of a snapshot in the time-ordered snapshot sequence (0-based).
///
/// `TimeIndex(0)` is the earliest snapshot. Algorithms never compare raw
/// [`Timestamp`] labels in their inner loops; they compare indices, which is
/// equivalent because the snapshot sequence is sorted by label.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeIndex(pub u32);

impl TimeIndex {
    /// Returns the index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `TimeIndex` from a `usize`.
    ///
    /// # Panics
    /// Panics (in debug builds) if `i` does not fit in `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "time index {i} exceeds u32::MAX");
        TimeIndex(i as u32)
    }
}

impl fmt::Debug for TimeIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TimeIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for TimeIndex {
    fn from(v: u32) -> Self {
        TimeIndex(v)
    }
}

/// A user-facing time label attached to a snapshot.
///
/// Only the ordering of labels matters to the algorithms; `i64` covers
/// calendar years, Unix seconds and synthetic epoch counters alike.
pub type Timestamp = i64;

/// A temporal node `(v, t)` — a node observed at a particular snapshot
/// (Definition 2 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TemporalNode {
    /// The node component `v`.
    pub node: NodeId,
    /// The snapshot index holding the time component `t`.
    pub time: TimeIndex,
}

impl TemporalNode {
    /// Creates a temporal node from a node and a snapshot index.
    #[inline]
    pub fn new(node: NodeId, time: TimeIndex) -> Self {
        TemporalNode { node, time }
    }

    /// Convenience constructor from raw `u32` components.
    #[inline]
    pub fn from_raw(node: u32, time: u32) -> Self {
        TemporalNode {
            node: NodeId(node),
            time: TimeIndex(time),
        }
    }

    /// Flattens the temporal node to a dense index in row-major
    /// `time * num_nodes + node` order, the layout used by distance maps and
    /// by the block adjacency matrix of Section III-C.
    #[inline]
    pub fn flat_index(self, num_nodes: usize) -> usize {
        self.time.index() * num_nodes + self.node.index()
    }

    /// Inverse of [`TemporalNode::flat_index`].
    #[inline]
    pub fn from_flat_index(flat: usize, num_nodes: usize) -> Self {
        TemporalNode {
            node: NodeId::from_index(flat % num_nodes),
            time: TimeIndex::from_index(flat / num_nodes),
        }
    }
}

impl fmt::Debug for TemporalNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, t{})", self.node.0, self.time.0)
    }
}

impl From<(u32, u32)> for TemporalNode {
    fn from((node, time): (u32, u32)) -> Self {
        TemporalNode::from_raw(node, time)
    }
}

/// A static edge `(u, v)` existing at snapshot `t` — an element of the
/// time-labelled static edge set `Ẽ` of Theorem 1.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StaticEdge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Snapshot at which the edge exists.
    pub time: TimeIndex,
}

impl StaticEdge {
    /// Creates a static edge.
    #[inline]
    pub fn new(src: NodeId, dst: NodeId, time: TimeIndex) -> Self {
        StaticEdge { src, dst, time }
    }
}

/// A causal edge `((v, s), (v, t))` with `s < t` connecting two active
/// occurrences of the same node — an element of `E′` in Theorem 1.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CausalEdge {
    /// The node that persists through time.
    pub node: NodeId,
    /// Earlier active snapshot.
    pub from_time: TimeIndex,
    /// Later active snapshot.
    pub to_time: TimeIndex,
}

impl CausalEdge {
    /// Creates a causal edge; `from_time` must precede `to_time`.
    #[inline]
    pub fn new(node: NodeId, from_time: TimeIndex, to_time: TimeIndex) -> Self {
        debug_assert!(from_time < to_time, "causal edges must advance in time");
        CausalEdge {
            node,
            from_time,
            to_time,
        }
    }

    /// The temporal node at the tail of the edge.
    #[inline]
    pub fn source(self) -> TemporalNode {
        TemporalNode::new(self.node, self.from_time)
    }

    /// The temporal node at the head of the edge.
    #[inline]
    pub fn target(self) -> TemporalNode {
        TemporalNode::new(self.node, self.to_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_index() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(u32::from(n), 42);
        assert_eq!(NodeId::from(42u32), n);
    }

    #[test]
    fn time_index_ordering_matches_raw_ordering() {
        assert!(TimeIndex(0) < TimeIndex(1));
        assert!(TimeIndex(5) > TimeIndex(2));
        assert_eq!(TimeIndex::from_index(7).index(), 7);
    }

    #[test]
    fn temporal_node_flat_index_round_trips() {
        let num_nodes = 13;
        for t in 0..5u32 {
            for v in 0..13u32 {
                let tn = TemporalNode::from_raw(v, t);
                let flat = tn.flat_index(num_nodes);
                assert_eq!(TemporalNode::from_flat_index(flat, num_nodes), tn);
            }
        }
    }

    #[test]
    fn temporal_node_flat_index_is_row_major_by_time() {
        let num_nodes = 10;
        let a = TemporalNode::from_raw(9, 0);
        let b = TemporalNode::from_raw(0, 1);
        assert_eq!(a.flat_index(num_nodes) + 1, b.flat_index(num_nodes));
    }

    #[test]
    fn causal_edge_endpoints() {
        let e = CausalEdge::new(NodeId(3), TimeIndex(1), TimeIndex(4));
        assert_eq!(e.source(), TemporalNode::from_raw(3, 1));
        assert_eq!(e.target(), TemporalNode::from_raw(3, 4));
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
        assert_eq!(format!("{:?}", TimeIndex(2)), "t2");
        assert_eq!(format!("{:?}", TemporalNode::from_raw(1, 2)), "(1, t2)");
    }
}
